//! [`SessionDriver`]: plumbing between a workload program and a
//! [`LockSession`] state machine.

use nucasim::{Command, CpuCtx};

use crate::{LockSession, Step};

/// What the driver wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveResult {
    /// Execute this command and call [`SessionDriver::on_result`] with its
    /// result.
    Busy(Command),
    /// The acquisition completed; the caller holds the lock.
    AcquireDone,
    /// The release completed.
    ReleaseDone,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Acquiring,
    Holding,
    Releasing,
}

/// Drives a [`LockSession`] from inside a [`nucasim::Program`].
///
/// A workload keeps one driver per lock it uses; when the driver reports
/// [`DriveResult::Busy`], the workload issues the command and routes the
/// completion back via [`SessionDriver::on_result`].
///
/// The driver owns the lock's bookkeeping: every successful acquisition is
/// recorded (with its time-to-acquire) via
/// [`CpuCtx::record_acquire`][nucasim::CpuCtx::record_acquire], and every
/// release records the hold time — so workloads no longer call
/// `record_acquire` themselves. Use [`with_lock_index`] when a workload
/// drives more than one lock.
///
/// Because every acquisition funnels through `record_acquire`, the
/// engine's fault-injection layers see lock ownership through the driver:
/// with [`nucasim::HolderPreemptConfig`] enabled, an acquisition may mark
/// this CPU to lose a quantum at its next resume — i.e. while it holds
/// the lock — without any change to the workload code.
///
/// [`with_lock_index`]: SessionDriver::with_lock_index
///
/// # Example
///
/// ```
/// use hbo_locks::LockKind;
/// use nucasim::{CpuCtx, Machine, MachineConfig, SimStats};
/// use nucasim_locks::{build_lock, DriveResult, GtSlots, SessionDriver, SimLockParams};
/// use nuca_topology::{CpuId, NodeId};
/// use std::sync::Arc;
///
/// let mut m = Machine::new(MachineConfig::wildfire(2, 2));
/// let topo = Arc::clone(m.topology());
/// let gt = GtSlots::alloc(m.mem_mut(), &topo);
/// let lock = build_lock(LockKind::Hbo, m.mem_mut(), &topo, &gt, NodeId(0),
///                       &SimLockParams::default());
/// let mut driver = SessionDriver::new(lock.session(CpuId(0), NodeId(0)));
/// // Inside a Program the engine supplies the CpuCtx; standalone, build one:
/// let mut stats = SimStats::default();
/// let mut ctx = CpuCtx::new(CpuId(0), NodeId(0), 0, &mut stats);
/// assert!(matches!(driver.start_acquire(&mut ctx), DriveResult::Busy(_)));
/// ```
#[derive(Debug)]
pub struct SessionDriver {
    session: Box<dyn LockSession>,
    phase: Phase,
    /// Dense index this lock's statistics are recorded under.
    lock_index: usize,
    /// Simulated time the current acquisition began.
    acquire_started: u64,
    /// Simulated time the lock was acquired (for hold-time accounting).
    acquired_at: u64,
}

impl SessionDriver {
    /// Wraps a session; statistics go to lock index 0.
    pub fn new(session: Box<dyn LockSession>) -> SessionDriver {
        SessionDriver {
            session,
            phase: Phase::Idle,
            lock_index: 0,
            acquire_started: 0,
            acquired_at: 0,
        }
    }

    /// Returns the driver recording under lock index `lock` (for workloads
    /// driving several locks, e.g. the multi-lock application kernels).
    #[must_use]
    pub fn with_lock_index(mut self, lock: usize) -> SessionDriver {
        self.lock_index = lock;
        self
    }

    /// The lock index this driver records statistics under.
    pub fn lock_index(&self) -> usize {
        self.lock_index
    }

    /// Begins an acquisition.
    ///
    /// # Panics
    ///
    /// Panics if the driver is mid-phase or already holding.
    pub fn start_acquire(&mut self, ctx: &mut CpuCtx<'_>) -> DriveResult {
        assert_eq!(self.phase, Phase::Idle, "acquire while not idle");
        self.phase = Phase::Acquiring;
        self.acquire_started = ctx.now;
        ctx.trace_acquire_start(self.lock_index);
        self.step(Phase::Acquiring, ctx, None, true)
    }

    /// Begins a release, recording the hold time.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not currently held.
    pub fn start_release(&mut self, ctx: &mut CpuCtx<'_>) -> DriveResult {
        assert_eq!(self.phase, Phase::Holding, "release while not holding");
        self.phase = Phase::Releasing;
        ctx.record_release(self.lock_index, ctx.now - self.acquired_at);
        self.step(Phase::Releasing, ctx, None, true)
    }

    /// Routes a command completion into the session.
    ///
    /// # Panics
    ///
    /// Panics if no command is outstanding.
    pub fn on_result(&mut self, ctx: &mut CpuCtx<'_>, result: Option<u64>) -> DriveResult {
        let phase = self.phase;
        self.step(phase, ctx, result, false)
    }

    /// Whether the lock is currently held.
    pub fn is_holding(&self) -> bool {
        self.phase == Phase::Holding
    }

    fn step(
        &mut self,
        phase: Phase,
        ctx: &mut CpuCtx<'_>,
        result: Option<u64>,
        starting: bool,
    ) -> DriveResult {
        let step = match (phase, starting) {
            (Phase::Acquiring, true) => self.session.start_acquire(ctx),
            (Phase::Acquiring, false) => self.session.resume_acquire(ctx, result),
            (Phase::Releasing, true) => self.session.start_release(ctx),
            (Phase::Releasing, false) => self.session.resume_release(ctx, result),
            (p, _) => panic!("no command outstanding in phase {p:?}"),
        };
        match step {
            Step::Op(cmd) => DriveResult::Busy(cmd),
            Step::Acquired => {
                assert_eq!(phase, Phase::Acquiring, "Acquired outside acquire phase");
                self.phase = Phase::Holding;
                self.acquired_at = ctx.now;
                ctx.record_acquire(self.lock_index);
                ctx.record_acquire_latency(self.lock_index, ctx.now - self.acquire_started);
                DriveResult::AcquireDone
            }
            Step::Released => {
                assert_eq!(phase, Phase::Releasing, "Released outside release phase");
                self.phase = Phase::Idle;
                DriveResult::ReleaseDone
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_lock, GtSlots, SimLockParams};
    use hbo_locks::LockKind;
    use nuca_topology::{CpuId, NodeId};
    use nucasim::{Machine, MachineConfig, SimStats};
    use std::sync::Arc;

    fn driver(kind: LockKind) -> SessionDriver {
        let mut m = Machine::new(MachineConfig::wildfire(2, 2));
        let topo = Arc::clone(m.topology());
        let gt = GtSlots::alloc(m.mem_mut(), &topo);
        let lock = build_lock(
            kind,
            m.mem_mut(),
            &topo,
            &gt,
            NodeId(0),
            &SimLockParams::default(),
        );
        SessionDriver::new(lock.session(CpuId(0), NodeId(0)))
    }

    #[test]
    fn start_acquire_yields_command() {
        for &kind in hbo_locks::LockCatalog::kinds() {
            let mut d = driver(kind);
            let mut stats = SimStats::default();
            let mut ctx = CpuCtx::new(CpuId(0), NodeId(0), 0, &mut stats);
            assert!(
                matches!(d.start_acquire(&mut ctx), DriveResult::Busy(_)),
                "{kind}"
            );
            assert!(!d.is_holding());
        }
    }

    #[test]
    fn lock_index_builder() {
        let d = driver(LockKind::Tatas).with_lock_index(3);
        assert_eq!(d.lock_index(), 3);
    }

    #[test]
    #[should_panic(expected = "release while not holding")]
    fn release_before_acquire_panics() {
        let mut d = driver(LockKind::Tatas);
        let mut stats = SimStats::default();
        let mut ctx = CpuCtx::new(CpuId(0), NodeId(0), 0, &mut stats);
        let _ = d.start_release(&mut ctx);
    }

    #[test]
    #[should_panic(expected = "acquire while not idle")]
    fn double_start_acquire_panics() {
        let mut d = driver(LockKind::Hbo);
        let mut stats = SimStats::default();
        let mut ctx = CpuCtx::new(CpuId(0), NodeId(0), 0, &mut stats);
        let _ = d.start_acquire(&mut ctx);
        let _ = d.start_acquire(&mut ctx);
    }

    #[test]
    #[should_panic(expected = "no command outstanding")]
    fn result_without_command_panics() {
        let mut d = driver(LockKind::Mcs);
        let mut stats = SimStats::default();
        let mut ctx = CpuCtx::new(CpuId(0), NodeId(0), 0, &mut stats);
        let _ = d.on_result(&mut ctx, Some(0));
    }
}

//! [`SessionDriver`]: plumbing between a workload program and a
//! [`LockSession`] state machine.

use nucasim::Command;

use crate::{LockSession, Step};

/// What the driver wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveResult {
    /// Execute this command and call [`SessionDriver::on_result`] with its
    /// result.
    Busy(Command),
    /// The acquisition completed; the caller holds the lock.
    AcquireDone,
    /// The release completed.
    ReleaseDone,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Acquiring,
    Holding,
    Releasing,
}

/// Drives a [`LockSession`] from inside a [`nucasim::Program`].
///
/// A workload keeps one driver per lock it uses; when the driver reports
/// [`DriveResult::Busy`], the workload issues the command and routes the
/// completion back via [`SessionDriver::on_result`].
///
/// # Example
///
/// ```
/// use hbo_locks::LockKind;
/// use nucasim::{Machine, MachineConfig};
/// use nucasim_locks::{build_lock, DriveResult, GtSlots, SessionDriver, SimLockParams};
/// use nuca_topology::{CpuId, NodeId};
/// use std::sync::Arc;
///
/// let mut m = Machine::new(MachineConfig::wildfire(2, 2));
/// let topo = Arc::clone(m.topology());
/// let gt = GtSlots::alloc(m.mem_mut(), &topo);
/// let lock = build_lock(LockKind::Hbo, m.mem_mut(), &topo, &gt, NodeId(0),
///                       &SimLockParams::default());
/// let mut driver = SessionDriver::new(lock.session(CpuId(0), NodeId(0)));
/// // Inside a Program, `start_acquire` yields the first command to issue:
/// assert!(matches!(driver.start_acquire(), DriveResult::Busy(_)));
/// ```
#[derive(Debug)]
pub struct SessionDriver {
    session: Box<dyn LockSession>,
    phase: Phase,
}

impl SessionDriver {
    /// Wraps a session.
    pub fn new(session: Box<dyn LockSession>) -> SessionDriver {
        SessionDriver {
            session,
            phase: Phase::Idle,
        }
    }

    /// Begins an acquisition.
    ///
    /// # Panics
    ///
    /// Panics if the driver is mid-phase or already holding.
    pub fn start_acquire(&mut self) -> DriveResult {
        assert_eq!(self.phase, Phase::Idle, "acquire while not idle");
        self.phase = Phase::Acquiring;
        self.step(self.phase, None, true)
    }

    /// Begins a release.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not currently held.
    pub fn start_release(&mut self) -> DriveResult {
        assert_eq!(self.phase, Phase::Holding, "release while not holding");
        self.phase = Phase::Releasing;
        self.step(self.phase, None, true)
    }

    /// Routes a command completion into the session.
    ///
    /// # Panics
    ///
    /// Panics if no command is outstanding.
    pub fn on_result(&mut self, result: Option<u64>) -> DriveResult {
        let phase = self.phase;
        self.step(phase, result, false)
    }

    /// Whether the lock is currently held.
    pub fn is_holding(&self) -> bool {
        self.phase == Phase::Holding
    }

    fn step(&mut self, phase: Phase, result: Option<u64>, starting: bool) -> DriveResult {
        let step = match (phase, starting) {
            (Phase::Acquiring, true) => self.session.start_acquire(),
            (Phase::Acquiring, false) => self.session.resume_acquire(result),
            (Phase::Releasing, true) => self.session.start_release(),
            (Phase::Releasing, false) => self.session.resume_release(result),
            (p, _) => panic!("no command outstanding in phase {p:?}"),
        };
        match step {
            Step::Op(cmd) => DriveResult::Busy(cmd),
            Step::Acquired => {
                assert_eq!(phase, Phase::Acquiring, "Acquired outside acquire phase");
                self.phase = Phase::Holding;
                DriveResult::AcquireDone
            }
            Step::Released => {
                assert_eq!(phase, Phase::Releasing, "Released outside release phase");
                self.phase = Phase::Idle;
                DriveResult::ReleaseDone
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_lock, GtSlots, SimLockParams};
    use hbo_locks::LockKind;
    use nuca_topology::{CpuId, NodeId};
    use nucasim::{Machine, MachineConfig};
    use std::sync::Arc;

    fn driver(kind: LockKind) -> SessionDriver {
        let mut m = Machine::new(MachineConfig::wildfire(2, 2));
        let topo = Arc::clone(m.topology());
        let gt = GtSlots::alloc(m.mem_mut(), &topo);
        let lock = build_lock(
            kind,
            m.mem_mut(),
            &topo,
            &gt,
            NodeId(0),
            &SimLockParams::default(),
        );
        SessionDriver::new(lock.session(CpuId(0), NodeId(0)))
    }

    #[test]
    fn start_acquire_yields_command() {
        for kind in LockKind::ALL {
            let mut d = driver(kind);
            assert!(matches!(d.start_acquire(), DriveResult::Busy(_)), "{kind}");
            assert!(!d.is_holding());
        }
    }

    #[test]
    #[should_panic(expected = "release while not holding")]
    fn release_before_acquire_panics() {
        let mut d = driver(LockKind::Tatas);
        let _ = d.start_release();
    }

    #[test]
    #[should_panic(expected = "acquire while not idle")]
    fn double_start_acquire_panics() {
        let mut d = driver(LockKind::Hbo);
        let _ = d.start_acquire();
        let _ = d.start_acquire();
    }

    #[test]
    #[should_panic(expected = "no command outstanding")]
    fn result_without_command_panics() {
        let mut d = driver(LockKind::Mcs);
        let _ = d.on_result(Some(0));
    }
}

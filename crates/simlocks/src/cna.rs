//! Simulator CNA — the compact NUMA-aware queue lock (Dice & Kogan,
//! EuroSys 2019; arXiv:1810.05600).
//!
//! MCS with a twist: the releaser walks the main queue for the first
//! *same-node* waiter and hands over locally, detaching the skipped
//! remote prefix onto a secondary queue threaded through the same queue
//! nodes. A deterministic consecutive-local-handoff threshold (the
//! published version uses a random flush probability) bounds how long
//! the secondary queue can be bypassed before it is spliced back ahead
//! of the main queue.
//!
//! Memory layout mirrors the real lock: a tail word, a holder-only
//! `streak` word, and per-CPU queue nodes (`spin`, `socket`, `sec_tail`,
//! `next`) homed in each CPU's own NUCA node. The release-path queue
//! walk issues real simulated reads, so CNA's handoff-selection cost is
//! visible to the profiler — that scan is the price of its locality.

use hbo_locks::LockKind;
use nuca_topology::{CpuId, NodeId, Topology};
use nucasim::{Addr, Command, CpuCtx, MemorySystem};

use crate::{LockSession, SimLock, Step};

/// `spin` value while waiting.
const WAIT: u64 = 0;
/// `spin` value once granted with an empty secondary queue. Granted
/// values `>= 2` encode a secondary-queue head (CPU encoding + 1).
const GRANTED: u64 = 1;

/// One queue node's words: `(spin, socket, sec_tail, next)`.
type Qnode = (Addr, Addr, Addr, Addr);

/// CNA in simulated memory.
#[derive(Debug)]
pub struct SimCna {
    tail: Addr,
    /// Consecutive local handoffs; read and written only by the holder.
    streak: Addr,
    splice_threshold: u64,
    qnodes: Vec<Qnode>,
    /// Mutant hook ([`crate::mutants::SpliceLostCna`]): the splice path
    /// "forgets" to link the main successor behind the secondary queue.
    drop_splice_link: bool,
}

impl SimCna {
    /// Allocates the lock (tail and streak homed in `home`, queue nodes
    /// homed per-CPU). `socket` words are statically initialized — they
    /// describe the machine, not runtime state.
    pub fn alloc(
        mem: &mut MemorySystem,
        topo: &Topology,
        home: NodeId,
        splice_threshold: u32,
    ) -> SimCna {
        let tail = mem.alloc(home);
        let streak = mem.alloc(home);
        let qnodes: Vec<Qnode> = topo
            .cpus()
            .map(|c| {
                let n = topo.node_of(c);
                let q = (mem.alloc(n), mem.alloc(n), mem.alloc(n), mem.alloc(n));
                mem.poke(q.1, n.index() as u64);
                q
            })
            .collect();
        SimCna {
            tail,
            streak,
            splice_threshold: u64::from(splice_threshold.max(1)),
            qnodes,
            drop_splice_link: false,
        }
    }

    /// [`alloc`](SimCna::alloc) with the splice-link bug armed — only for
    /// checker validation via [`crate::mutants::SpliceLostCna`].
    pub(crate) fn alloc_with_lost_splice_link(
        mem: &mut MemorySystem,
        topo: &Topology,
        home: NodeId,
        splice_threshold: u32,
    ) -> SimCna {
        let mut lock = SimCna::alloc(mem, topo, home, splice_threshold);
        lock.drop_splice_link = true;
        lock
    }
}

impl SimLock for SimCna {
    fn session(&self, cpu: CpuId, node: NodeId) -> Box<dyn LockSession> {
        Box::new(CnaSession {
            tail: self.tail,
            streak: self.streak,
            threshold: self.splice_threshold,
            qnodes: self.qnodes.clone(),
            me: cpu.index() as u64 + 1,
            my_socket: node.index() as u64,
            drop_splice_link: self.drop_splice_link,
            sv: GRANTED,
            head: 0,
            cur: 0,
            prefix_last: 0,
            streak_val: 0,
            state: CnaState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        LockKind::Cna
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CnaState {
    Idle,
    InitSpin,
    InitSecTail,
    InitNext,
    Swapped,
    SelfGrant,
    LinkedPred,
    SpinGrant,
    Holding,
    // Release.
    ReadNext,
    CasTailFree,
    RdPromoteSecTail,
    CasTailPromote,
    WrStreakPromote,
    GrantPromote,
    WaitLink,
    RdStreak,
    /// Queue walk: reading `cur`'s socket.
    RdSock,
    /// Queue walk: reading `cur`'s next link.
    RdWalkNext,
    CutPrefix,
    SetNewSecTail,
    RdOldSecTail,
    LinkOldSecTail,
    UpdOldSecTail,
    WrStreakLocal,
    GrantSucc,
    WrStreakSplice,
    RdSecTailSplice,
    LinkSecTail,
    GrantSecHead,
    GrantHead,
}

#[derive(Debug)]
struct CnaSession {
    tail: Addr,
    streak: Addr,
    threshold: u64,
    qnodes: Vec<Qnode>,
    /// This CPU's encoding in tail/next words (index + 1).
    me: u64,
    my_socket: u64,
    drop_splice_link: bool,
    /// The granted spin value: [`GRANTED`] or secondary head enc + 1.
    sv: u64,
    /// Main-queue successor (head of the walk) during release.
    head: u64,
    /// Walk cursor.
    cur: u64,
    /// Last remote waiter skipped so far (0 = none skipped).
    prefix_last: u64,
    /// Streak value read at the start of handoff selection.
    streak_val: u64,
    state: CnaState,
}

impl CnaSession {
    fn spin_of(&self, enc: u64) -> Addr {
        self.qnodes[(enc - 1) as usize].0
    }

    fn socket_of(&self, enc: u64) -> Addr {
        self.qnodes[(enc - 1) as usize].1
    }

    fn sec_tail_of(&self, enc: u64) -> Addr {
        self.qnodes[(enc - 1) as usize].2
    }

    fn next_of(&self, enc: u64) -> Addr {
        self.qnodes[(enc - 1) as usize].3
    }

    /// The secondary-queue head encoded in `self.sv` (callers check
    /// `sv != GRANTED` first).
    fn sec_head(&self) -> u64 {
        debug_assert!(self.sv > GRANTED);
        self.sv - 1
    }

    /// Begins handoff selection once a main-queue successor is linked:
    /// walk for a local waiter while the streak budget lasts, else go
    /// straight to the splice path.
    fn select_successor(&mut self) -> Step {
        if self.streak_val < self.threshold {
            self.cur = self.head;
            self.prefix_last = 0;
            self.state = CnaState::RdSock;
            Step::Op(Command::Read(self.socket_of(self.cur)))
        } else {
            self.state = CnaState::WrStreakSplice;
            Step::Op(Command::Write(self.streak, 0))
        }
    }

    /// The splice path after the streak reset: grant the remote side —
    /// the secondary queue spliced ahead of the main successor, or the
    /// main successor directly when no secondary exists.
    fn splice_step(&mut self) -> Step {
        if self.sv == GRANTED {
            self.state = CnaState::GrantHead;
            Step::Op(Command::Write(self.spin_of(self.head), GRANTED))
        } else {
            self.state = CnaState::RdSecTailSplice;
            Step::Op(Command::Read(self.sec_tail_of(self.sec_head())))
        }
    }
}

impl LockSession for CnaSession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, CnaState::Idle);
        self.state = CnaState::InitSpin;
        Step::Op(Command::Write(self.spin_of(self.me), WAIT))
    }

    fn resume_acquire(&mut self, _ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            CnaState::InitSpin => {
                self.state = CnaState::InitSecTail;
                Step::Op(Command::Write(self.sec_tail_of(self.me), 0))
            }
            CnaState::InitSecTail => {
                self.state = CnaState::InitNext;
                Step::Op(Command::Write(self.next_of(self.me), 0))
            }
            CnaState::InitNext => {
                self.state = CnaState::Swapped;
                Step::Op(Command::Swap {
                    addr: self.tail,
                    value: self.me,
                })
            }
            CnaState::Swapped => {
                let prev = result.expect("swap returns old tail");
                if prev == 0 {
                    // Uncontended: become the holder with an empty
                    // secondary queue.
                    self.state = CnaState::SelfGrant;
                    Step::Op(Command::Write(self.spin_of(self.me), GRANTED))
                } else {
                    self.state = CnaState::LinkedPred;
                    Step::Op(Command::Write(self.next_of(prev), self.me))
                }
            }
            CnaState::SelfGrant => {
                self.sv = GRANTED;
                self.state = CnaState::Holding;
                Step::Acquired
            }
            CnaState::LinkedPred => {
                self.state = CnaState::SpinGrant;
                Step::Op(Command::WaitWhile {
                    addr: self.spin_of(self.me),
                    equals: WAIT,
                })
            }
            CnaState::SpinGrant => {
                // The granted value carries the secondary queue.
                self.sv = result.expect("wait returns value");
                debug_assert!(self.sv >= GRANTED);
                self.state = CnaState::Holding;
                Step::Acquired
            }
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, CnaState::Holding);
        self.state = CnaState::ReadNext;
        Step::Op(Command::Read(self.next_of(self.me)))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            CnaState::ReadNext => {
                let next = result.expect("read returns value");
                if next != 0 {
                    self.head = next;
                    self.state = CnaState::RdStreak;
                    Step::Op(Command::Read(self.streak))
                } else if self.sv == GRANTED {
                    // Nobody visible anywhere: try to free the lock.
                    self.state = CnaState::CasTailFree;
                    Step::Op(Command::Cas {
                        addr: self.tail,
                        expected: self.me,
                        new: 0,
                    })
                } else {
                    // Main queue drained, remote waiters parked: promote
                    // the secondary queue to be the main queue.
                    self.state = CnaState::RdPromoteSecTail;
                    Step::Op(Command::Read(self.sec_tail_of(self.sec_head())))
                }
            }
            CnaState::CasTailFree => {
                let old = result.expect("cas returns old");
                if old == self.me {
                    self.state = CnaState::Idle;
                    Step::Released
                } else {
                    self.state = CnaState::WaitLink;
                    Step::Op(Command::WaitWhile {
                        addr: self.next_of(self.me),
                        equals: 0,
                    })
                }
            }
            CnaState::RdPromoteSecTail => {
                let sec_tail = result.expect("read returns value");
                self.cur = sec_tail;
                self.state = CnaState::CasTailPromote;
                Step::Op(Command::Cas {
                    addr: self.tail,
                    expected: self.me,
                    new: sec_tail,
                })
            }
            CnaState::CasTailPromote => {
                let old = result.expect("cas returns old");
                if old == self.me {
                    self.state = CnaState::WrStreakPromote;
                    Step::Op(Command::Write(self.streak, 0))
                } else {
                    self.state = CnaState::WaitLink;
                    Step::Op(Command::WaitWhile {
                        addr: self.next_of(self.me),
                        equals: 0,
                    })
                }
            }
            CnaState::WrStreakPromote => {
                self.state = CnaState::GrantPromote;
                Step::Op(Command::Write(self.spin_of(self.sec_head()), GRANTED))
            }
            CnaState::GrantPromote => {
                self.state = CnaState::Idle;
                Step::Released
            }
            CnaState::WaitLink => {
                let next = result.expect("wait returns value");
                debug_assert_ne!(next, 0);
                self.head = next;
                self.state = CnaState::RdStreak;
                Step::Op(Command::Read(self.streak))
            }
            CnaState::RdStreak => {
                self.streak_val = result.expect("read returns value");
                self.select_successor()
            }
            CnaState::RdSock => {
                let sock = result.expect("read returns value");
                if sock == self.my_socket {
                    // Local successor found at `cur`.
                    if self.prefix_last == 0 {
                        // No remote prefix skipped: plain local handoff.
                        self.state = CnaState::WrStreakLocal;
                        Step::Op(Command::Write(self.streak, self.streak_val + 1))
                    } else {
                        // Detach [head ..= prefix_last] onto the
                        // secondary queue, starting by terminating it.
                        self.state = CnaState::CutPrefix;
                        Step::Op(Command::Write(self.next_of(self.prefix_last), 0))
                    }
                } else {
                    self.prefix_last = self.cur;
                    self.state = CnaState::RdWalkNext;
                    Step::Op(Command::Read(self.next_of(self.cur)))
                }
            }
            CnaState::RdWalkNext => {
                let next = result.expect("read returns value");
                if next == 0 {
                    // Ran off the linked queue without a local waiter
                    // (possibly an arrival mid-link): serve remote.
                    self.state = CnaState::WrStreakSplice;
                    Step::Op(Command::Write(self.streak, 0))
                } else {
                    self.cur = next;
                    self.state = CnaState::RdSock;
                    Step::Op(Command::Read(self.socket_of(self.cur)))
                }
            }
            CnaState::CutPrefix => {
                if self.sv == GRANTED {
                    // The detached prefix becomes a fresh secondary
                    // queue headed by `head`.
                    self.state = CnaState::SetNewSecTail;
                    Step::Op(Command::Write(self.sec_tail_of(self.head), self.prefix_last))
                } else {
                    // Append the prefix to the existing secondary queue.
                    self.state = CnaState::RdOldSecTail;
                    Step::Op(Command::Read(self.sec_tail_of(self.sec_head())))
                }
            }
            CnaState::SetNewSecTail => {
                self.sv = self.head + 1;
                self.state = CnaState::WrStreakLocal;
                Step::Op(Command::Write(self.streak, self.streak_val + 1))
            }
            CnaState::RdOldSecTail => {
                let old_tail = result.expect("read returns value");
                self.state = CnaState::LinkOldSecTail;
                Step::Op(Command::Write(self.next_of(old_tail), self.head))
            }
            CnaState::LinkOldSecTail => {
                self.state = CnaState::UpdOldSecTail;
                Step::Op(Command::Write(
                    self.sec_tail_of(self.sec_head()),
                    self.prefix_last,
                ))
            }
            CnaState::UpdOldSecTail => {
                self.state = CnaState::WrStreakLocal;
                Step::Op(Command::Write(self.streak, self.streak_val + 1))
            }
            CnaState::WrStreakLocal => {
                // Grant `cur`, passing the (possibly grown) secondary
                // queue along in the spin value.
                self.state = CnaState::GrantSucc;
                Step::Op(Command::Write(self.spin_of(self.cur), self.sv))
            }
            CnaState::GrantSucc => {
                self.state = CnaState::Idle;
                Step::Released
            }
            CnaState::WrStreakSplice => self.splice_step(),
            CnaState::GrantHead => {
                self.state = CnaState::Idle;
                Step::Released
            }
            CnaState::RdSecTailSplice => {
                let sec_tail = result.expect("read returns value");
                if self.drop_splice_link {
                    // BUG (mutant): grant the secondary head without first
                    // linking the main successor behind the secondary
                    // tail. The main queue from `head` on is orphaned —
                    // those waiters spin forever and the chain's last
                    // node deadlocks waiting for a link that never comes.
                    self.state = CnaState::GrantSecHead;
                    return Step::Op(Command::Write(
                        self.spin_of(self.sec_head()),
                        GRANTED,
                    ));
                }
                self.state = CnaState::LinkSecTail;
                Step::Op(Command::Write(self.next_of(sec_tail), self.head))
            }
            CnaState::LinkSecTail => {
                self.state = CnaState::GrantSecHead;
                Step::Op(Command::Write(self.spin_of(self.sec_head()), GRANTED))
            }
            CnaState::GrantSecHead => {
                self.state = CnaState::Idle;
                Step::Released
            }
            s => unreachable!("resume_release in state {s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{exclusion_test, uncontested_cost};

    #[test]
    fn mutual_exclusion() {
        exclusion_test(LockKind::Cna, 2, 2, 50);
    }

    #[test]
    fn mutual_exclusion_many_cpus() {
        exclusion_test(LockKind::Cna, 2, 6, 20);
    }

    #[test]
    fn uncontested_costs_ordered() {
        let c = uncontested_cost(LockKind::Cna);
        assert!(c.same_processor < c.same_node);
        assert!(c.same_node < c.remote_node);
        // CNA pays MCS-like queue-node setup plus the self-grant store.
        let m = uncontested_cost(LockKind::Mcs);
        assert!(c.same_processor >= m.same_processor);
    }

    #[test]
    fn qnodes_are_node_local() {
        let mut m = nucasim::Machine::new(nucasim::MachineConfig::wildfire(2, 2));
        let topo = std::sync::Arc::clone(m.topology());
        let lock = SimCna::alloc(m.mem_mut(), &topo, NodeId(0), 64);
        for cpu in topo.cpus() {
            let (spin, socket, sec_tail, next) = lock.qnodes[cpu.index()];
            for w in [spin, socket, sec_tail, next] {
                assert_eq!(m.mem().home(w), topo.node_of(cpu));
            }
            assert_eq!(m.mem().peek(socket), topo.node_of(cpu).index() as u64);
        }
    }

    #[test]
    fn handoffs_prefer_the_holders_node() {
        // 2 nodes × 3 CPUs contending: CNA should keep clear majorities
        // of handovers node-local, like the HBO family and unlike MCS.
        use crate::testutil::exclusion_test_with;
        let report = exclusion_test_with(
            LockKind::Cna,
            nucasim::MachineConfig::wildfire(2, 3),
            40,
        );
        let h = report.lock_traces[0].handoff_ratio().unwrap();
        assert!(
            h < 0.35,
            "CNA remote-handoff ratio {h:.3} not node-local"
        );
    }
}

//! Simulator HBO_GT — paper Figure 1 including the emphasized lines.

use hbo_locks::{BackoffConfig, LockKind};
use nuca_topology::{CpuId, NodeId};
use nucasim::{Addr, BackoffClass, Command, CpuCtx, MemorySystem};

use crate::hbo::{tag, FREE};
use crate::{GtSlots, LockSession, SimBackoff, SimLock, Step};

/// The `is_spinning` "dummy value" (no throttling).
pub(crate) const DUMMY: u64 = 0;

/// HBO_GT in simulated memory: HBO plus the per-node `is_spinning` gate
/// that limits each node to (approximately) one remote spinner.
#[derive(Debug)]
pub struct SimHboGt {
    word: Addr,
    gt: GtSlots,
    local: BackoffConfig,
    remote: BackoffConfig,
}

impl SimHboGt {
    /// Allocates the lock word homed in `home`; `gt` supplies the shared
    /// per-node `is_spinning` words.
    pub fn alloc(
        mem: &mut MemorySystem,
        home: NodeId,
        gt: GtSlots,
        local: BackoffConfig,
        remote: BackoffConfig,
    ) -> SimHboGt {
        SimHboGt {
            word: mem.alloc(home),
            gt,
            local,
            remote,
        }
    }
}

impl SimLock for SimHboGt {
    fn session(&self, _cpu: CpuId, node: NodeId) -> Box<dyn LockSession> {
        Box::new(HboGtSession {
            word: self.word,
            my_slot: self.gt.slot(node),
            my_tag: tag(node),
            local: self.local,
            remote: self.remote,
            backoff: SimBackoff::new(self.local),
            state: GtState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        LockKind::HboGt
    }

    fn lock_word(&self) -> Option<Addr> {
        Some(self.word)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GtState {
    Idle,
    /// Gate: `while (L == is_spinning[my_node_id]);` (line 5 / 56).
    Gate,
    /// Fast-path / restart `cas` (line 6 / 57).
    GateCas,
    LocalDelay,
    LocalCas,
    MigratePause,
    /// Announcing `is_spinning[my] = L` before remote spinning (line 39).
    Announce,
    RemoteDelay,
    RemoteCas,
    /// Clearing the slot after a remote-loop success (line 44) — then
    /// Acquired.
    ClearThenAcquired,
    /// Clearing the slot after observing migration home (line 48) — then
    /// restart at the gate.
    ClearThenRestart,
    Holding,
    Releasing,
}

#[derive(Debug)]
struct HboGtSession {
    word: Addr,
    my_slot: Addr,
    my_tag: u64,
    local: BackoffConfig,
    remote: BackoffConfig,
    backoff: SimBackoff,
    state: GtState,
}

impl HboGtSession {
    fn cas(&self) -> Command {
        Command::Cas {
            addr: self.word,
            expected: FREE,
            new: self.my_tag,
        }
    }

    fn gate(&mut self) -> Step {
        self.state = GtState::Gate;
        Step::Op(Command::WaitWhile {
            addr: self.my_slot,
            equals: self.word.encode(),
        })
    }

    /// `start:` — classify by holder tag.
    fn classify(&mut self, ctx: &mut CpuCtx<'_>, tmp: u64) -> Step {
        if tmp == self.my_tag {
            self.backoff.reset(self.local);
            self.state = GtState::LocalDelay;
            let d = self.backoff.next_delay();
            ctx.trace_backoff(d, BackoffClass::Local);
            Step::Op(Command::Delay(d))
        } else {
            // Remote: publish the throttle before spinning (line 39).
            self.backoff.reset(self.remote);
            self.state = GtState::Announce;
            ctx.trace_throttle_spin();
            Step::Op(Command::Write(self.my_slot, self.word.encode()))
        }
    }
}

impl LockSession for HboGtSession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, GtState::Idle);
        self.gate()
    }

    fn resume_acquire(&mut self, ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            GtState::Gate => {
                self.state = GtState::GateCas;
                Step::Op(self.cas())
            }
            GtState::GateCas => {
                let tmp = result.expect("cas returns old");
                if tmp == FREE {
                    self.state = GtState::Holding;
                    Step::Acquired
                } else {
                    self.classify(ctx, tmp)
                }
            }
            GtState::LocalDelay => {
                self.state = GtState::LocalCas;
                Step::Op(self.cas())
            }
            GtState::LocalCas => {
                let tmp = result.expect("cas returns old");
                if tmp == FREE {
                    self.state = GtState::Holding;
                    return Step::Acquired;
                }
                if tmp == self.my_tag {
                    self.state = GtState::LocalDelay;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Local);
                    Step::Op(Command::Delay(d))
                } else {
                    self.state = GtState::MigratePause;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Local);
                    Step::Op(Command::Delay(d))
                }
            }
            GtState::MigratePause => {
                // `goto restart`: back through the gate.
                self.gate()
            }
            GtState::Announce => {
                self.state = GtState::RemoteDelay;
                let d = self.backoff.next_delay();
                ctx.trace_backoff(d, BackoffClass::Remote);
                Step::Op(Command::Delay(d))
            }
            GtState::RemoteDelay => {
                self.state = GtState::RemoteCas;
                Step::Op(self.cas())
            }
            GtState::RemoteCas => {
                let tmp = result.expect("cas returns old");
                if tmp == FREE {
                    // Release the threads from our node (line 44).
                    self.state = GtState::ClearThenAcquired;
                    Step::Op(Command::Write(self.my_slot, DUMMY))
                } else if tmp == self.my_tag {
                    // Lock migrated home (lines 47–49).
                    self.state = GtState::ClearThenRestart;
                    Step::Op(Command::Write(self.my_slot, DUMMY))
                } else {
                    self.state = GtState::RemoteDelay;
                    let d = self.backoff.next_delay();
                    ctx.trace_backoff(d, BackoffClass::Remote);
                    Step::Op(Command::Delay(d))
                }
            }
            GtState::ClearThenAcquired => {
                self.state = GtState::Holding;
                Step::Acquired
            }
            GtState::ClearThenRestart => self.gate(),
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, GtState::Holding);
        self.state = GtState::Releasing;
        Step::Op(Command::Write(self.word, FREE))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, _result: Option<u64>) -> Step {
        debug_assert_eq!(self.state, GtState::Releasing);
        self.state = GtState::Idle;
        Step::Released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{exclusion_test, uncontested_cost};

    #[test]
    fn mutual_exclusion() {
        exclusion_test(LockKind::HboGt, 2, 2, 50);
    }

    #[test]
    fn mutual_exclusion_many_cpus() {
        exclusion_test(LockKind::HboGt, 2, 6, 20);
    }

    #[test]
    fn uncontested_cost_close_to_tatas() {
        let g = uncontested_cost(LockKind::HboGt);
        let t = uncontested_cost(LockKind::Tatas);
        // One extra (hit) read on the gate is allowed.
        assert!(g.same_processor <= t.same_processor + 80);
    }

    #[test]
    fn throttling_cuts_global_traffic_with_many_remote_spinners() {
        // Many CPUs per node: HBO has every remote contender cas-ing the
        // line; HBO_GT elects ~one per node.
        let hbo = exclusion_test(LockKind::Hbo, 2, 6, 25);
        let gt = exclusion_test(LockKind::HboGt, 2, 6, 25);
        assert!(
            gt.traffic.global <= hbo.traffic.global,
            "GT global {} must not exceed HBO global {}",
            gt.traffic.global,
            hbo.traffic.global
        );
    }
}

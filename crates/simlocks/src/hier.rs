//! Simulator hierarchical HBO — the paper's "expanded in a hierarchical
//! way, using more than two sets of constants, for a hierarchical NUCA"
//! (§4.1), in simulation form.
//!
//! The lock word stores the holder's **CPU id** (not its node id), so a
//! contender can compute its full communication distance to the holder
//! (same chip / same node / remote node on a CMP-in-NUMA machine) and
//! pick a per-distance backoff from a [`LevelBackoff`] table.

use hbo_locks::LevelBackoff;
use nuca_topology::{CpuId, NodeId, Topology};
use nucasim::{Addr, BackoffClass, Command, CpuCtx, MemorySystem};

use crate::{LockSession, SimBackoff, SimLock, Step};

const FREE: u64 = 0;

#[inline]
fn tag(cpu: CpuId) -> u64 {
    cpu.index() as u64 + 1
}

/// Hierarchical HBO in simulated memory.
///
/// Not part of [`hbo_locks::LockKind`] (the paper's eight measured
/// algorithms); build it directly and pass it to a workload runner that
/// accepts a custom lock factory.
#[derive(Debug)]
pub struct SimHierHbo {
    word: Addr,
    topo: std::sync::Arc<Topology>,
    backoff: LevelBackoff,
}

impl SimHierHbo {
    /// Allocates the lock word homed in `home`, with a per-distance
    /// backoff table for `topo`'s distance classes.
    pub fn alloc(
        mem: &mut MemorySystem,
        topo: std::sync::Arc<Topology>,
        home: NodeId,
        backoff: LevelBackoff,
    ) -> SimHierHbo {
        SimHierHbo {
            word: mem.alloc(home),
            topo,
            backoff,
        }
    }
}

impl SimLock for SimHierHbo {
    fn session(&self, cpu: CpuId, _node: NodeId) -> Box<dyn LockSession> {
        let innermost = self.backoff.config(1);
        Box::new(HierSession {
            word: self.word,
            me: cpu,
            my_tag: tag(cpu),
            topo: std::sync::Arc::clone(&self.topo),
            table: self.backoff.clone(),
            backoff: SimBackoff::new(*innermost),
            distance: 1,
            state: HierState::Idle,
        })
    }

    fn kind(&self) -> hbo_locks::LockKind {
        hbo_locks::LockKind::Hier
    }

    fn lock_word(&self) -> Option<Addr> {
        Some(self.word)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HierState {
    Idle,
    FastCas,
    Delay,
    LoopCas,
    Holding,
    Releasing,
}

#[derive(Debug)]
struct HierSession {
    word: Addr,
    me: CpuId,
    my_tag: u64,
    topo: std::sync::Arc<Topology>,
    table: LevelBackoff,
    backoff: SimBackoff,
    /// Distance class currently spun at.
    distance: usize,
    state: HierState,
}

impl HierSession {
    fn cas(&self) -> Command {
        Command::Cas {
            addr: self.word,
            expected: FREE,
            new: self.my_tag,
        }
    }

    /// Classifies the holder (by CPU tag) and re-arms the backoff if the
    /// distance class changed.
    fn classify(&mut self, ctx: &mut CpuCtx<'_>, tmp: u64) -> Step {
        let holder = CpuId((tmp - 1) as usize);
        let d = self.topo.distance(self.me, holder).max(1);
        if d != self.distance || self.state == HierState::FastCas {
            self.distance = d;
            self.backoff.reset(*self.table.config(d));
        }
        self.state = HierState::Delay;
        let delay = self.backoff.next_delay();
        // The innermost distance class is "local" in the two-level sense;
        // everything further is reported as remote backoff.
        let class = if self.distance <= 1 {
            BackoffClass::Local
        } else {
            BackoffClass::Remote
        };
        ctx.trace_backoff(delay, class);
        Step::Op(Command::Delay(delay))
    }
}

impl LockSession for HierSession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, HierState::Idle);
        self.state = HierState::FastCas;
        Step::Op(self.cas())
    }

    fn resume_acquire(&mut self, ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            HierState::FastCas | HierState::LoopCas => {
                let tmp = result.expect("cas returns old");
                if tmp == FREE {
                    self.state = HierState::Holding;
                    Step::Acquired
                } else {
                    self.classify(ctx, tmp)
                }
            }
            HierState::Delay => {
                self.state = HierState::LoopCas;
                Step::Op(self.cas())
            }
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, HierState::Holding);
        self.state = HierState::Releasing;
        Step::Op(Command::Write(self.word, FREE))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, _result: Option<u64>) -> Step {
        debug_assert_eq!(self.state, HierState::Releasing);
        self.state = HierState::Idle;
        Step::Released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucasim::{LatencyModel, Machine, MachineConfig};
    use std::sync::Arc;

    fn cmp_machine() -> Machine {
        let topo = Topology::builder()
            .hierarchical_node(&[2, 4])
            .hierarchical_node(&[2, 4])
            .build()
            .expect("static shape");
        Machine::new(MachineConfig {
            topology: topo,
            ..MachineConfig::wildfire(2, 2).with_latency(LatencyModel::cmp_numa())
        })
    }

    #[test]
    fn alloc_and_session() {
        let mut m = cmp_machine();
        let topo = Arc::clone(m.topology());
        let lock = SimHierHbo::alloc(
            m.mem_mut(),
            topo,
            NodeId(0),
            LevelBackoff::geometric(3, 100, 800, 4),
        );
        let _s = lock.session(CpuId(5), NodeId(0));
        assert_eq!(lock.kind(), hbo_locks::LockKind::Hier);
    }

    #[test]
    fn chip_transfers_are_cheaper_in_the_model() {
        // Sanity for the memory-model extension this lock exploits: a
        // write by a same-chip neighbor costs less than a cross-chip one.
        let mut m = cmp_machine();
        let a = m.mem_mut().alloc(NodeId(0));
        // Drive through the public program API instead: run two tiny
        // programs and compare run times.
        use nucasim::{Command, CpuCtx, Program};
        struct Two {
            addr: Addr,
            step: u8,
        }
        impl Program for Two {
            fn resume(&mut self, _c: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                self.step += 1;
                match self.step {
                    1 => Command::Write(self.addr, 1),
                    _ => Command::Done,
                }
            }
        }
        // Writer on cpu0, then same-chip cpu1 writes.
        m.add_program(CpuId(0), Box::new(Two { addr: a, step: 0 }));
        let t0 = m.run(1_000_000).end_time;
        m.add_program(CpuId(1), Box::new(Two { addr: a, step: 0 }));
        let chip = m.run(2_000_000).end_time - t0;
        // Cross-chip neighbor (cpu4 is the second chip of node 0).
        m.add_program(CpuId(4), Box::new(Two { addr: a, step: 0 }));
        let cross = m.run(3_000_000).end_time - t0 - chip;
        assert!(
            chip < cross,
            "same-chip transfer ({chip}) must beat cross-chip ({cross})"
        );
    }
}

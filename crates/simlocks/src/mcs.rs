//! Simulator MCS queue lock.

use hbo_locks::LockKind;
use nuca_topology::{CpuId, NodeId, Topology};
use nucasim::{Addr, Command, CpuCtx, MemorySystem};

use crate::{LockSession, SimLock, Step};

/// MCS in simulated memory.
///
/// The tail word holds the *CPU id + 1* of the most recent contender (0 =
/// empty). Each CPU owns a queue node — a `locked` word and a `next` word —
/// allocated in its **own node's memory**, which is the defining property
/// of MCS: waiters spin on local storage.
#[derive(Debug)]
pub struct SimMcs {
    tail: Addr,
    /// `(locked, next)` per CPU.
    qnodes: Vec<(Addr, Addr)>,
}

impl SimMcs {
    /// Allocates the lock (tail homed in `home`, queue nodes homed
    /// per-CPU).
    pub fn alloc(mem: &mut MemorySystem, topo: &Topology, home: NodeId) -> SimMcs {
        let tail = mem.alloc(home);
        let qnodes = topo
            .cpus()
            .map(|c| {
                let n = topo.node_of(c);
                (mem.alloc(n), mem.alloc(n))
            })
            .collect();
        SimMcs { tail, qnodes }
    }
}

impl SimLock for SimMcs {
    fn session(&self, cpu: CpuId, _node: NodeId) -> Box<dyn LockSession> {
        Box::new(McsSession {
            tail: self.tail,
            qnodes: self.qnodes.clone(),
            me: cpu.index() as u64 + 1,
            state: McsState::Idle,
        })
    }

    fn kind(&self) -> LockKind {
        LockKind::Mcs
    }
}

const QUEUED: u64 = 1;
const GRANTED: u64 = 0;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum McsState {
    Idle,
    InitLocked,
    InitNext,
    Swapped,
    LinkedPred,
    SpinGrant,
    Holding,
    ReadNext,
    CasTail,
    WaitSuccessor,
    GrantSuccessor,
}

#[derive(Debug)]
struct McsSession {
    tail: Addr,
    qnodes: Vec<(Addr, Addr)>,
    /// This CPU's encoding in the tail/next words.
    me: u64,
    state: McsState,
}

impl McsSession {
    fn my_locked(&self) -> Addr {
        self.qnodes[(self.me - 1) as usize].0
    }

    fn my_next(&self) -> Addr {
        self.qnodes[(self.me - 1) as usize].1
    }

    fn locked_of(&self, enc: u64) -> Addr {
        self.qnodes[(enc - 1) as usize].0
    }

    fn next_of(&self, enc: u64) -> Addr {
        self.qnodes[(enc - 1) as usize].1
    }
}

impl LockSession for McsSession {
    fn start_acquire(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, McsState::Idle);
        self.state = McsState::InitLocked;
        Step::Op(Command::Write(self.my_locked(), QUEUED))
    }

    fn resume_acquire(&mut self, _ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            McsState::InitLocked => {
                self.state = McsState::InitNext;
                Step::Op(Command::Write(self.my_next(), 0))
            }
            McsState::InitNext => {
                self.state = McsState::Swapped;
                Step::Op(Command::Swap {
                    addr: self.tail,
                    value: self.me,
                })
            }
            McsState::Swapped => {
                let prev = result.expect("swap returns old tail");
                if prev == 0 {
                    self.state = McsState::Holding;
                    Step::Acquired
                } else {
                    self.state = McsState::LinkedPred;
                    Step::Op(Command::Write(self.next_of(prev), self.me))
                }
            }
            McsState::LinkedPred => {
                self.state = McsState::SpinGrant;
                Step::Op(Command::WaitWhile {
                    addr: self.my_locked(),
                    equals: QUEUED,
                })
            }
            McsState::SpinGrant => {
                debug_assert_eq!(result, Some(GRANTED));
                self.state = McsState::Holding;
                Step::Acquired
            }
            s => unreachable!("resume_acquire in state {s:?}"),
        }
    }

    fn start_release(&mut self, _ctx: &mut CpuCtx<'_>) -> Step {
        debug_assert_eq!(self.state, McsState::Holding);
        self.state = McsState::ReadNext;
        Step::Op(Command::Read(self.my_next()))
    }

    fn resume_release(&mut self, _ctx: &mut CpuCtx<'_>, result: Option<u64>) -> Step {
        match self.state {
            McsState::ReadNext => {
                let next = result.expect("read returns value");
                if next == 0 {
                    // No known successor: try to swing the tail back.
                    self.state = McsState::CasTail;
                    Step::Op(Command::Cas {
                        addr: self.tail,
                        expected: self.me,
                        new: 0,
                    })
                } else {
                    self.state = McsState::GrantSuccessor;
                    Step::Op(Command::Write(self.locked_of(next), GRANTED))
                }
            }
            McsState::CasTail => {
                let old = result.expect("cas returns old");
                if old == self.me {
                    // Queue empty; lock free.
                    self.state = McsState::Idle;
                    Step::Released
                } else {
                    // Someone is enqueueing: wait for the link.
                    self.state = McsState::WaitSuccessor;
                    Step::Op(Command::WaitWhile {
                        addr: self.my_next(),
                        equals: 0,
                    })
                }
            }
            McsState::WaitSuccessor => {
                let next = result.expect("wait returns value");
                debug_assert_ne!(next, 0);
                self.state = McsState::GrantSuccessor;
                Step::Op(Command::Write(self.locked_of(next), GRANTED))
            }
            McsState::GrantSuccessor => {
                self.state = McsState::Idle;
                Step::Released
            }
            s => unreachable!("resume_release in state {s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{exclusion_test, uncontested_cost};

    #[test]
    fn mutual_exclusion() {
        exclusion_test(LockKind::Mcs, 2, 2, 50);
    }

    #[test]
    fn mutual_exclusion_many_cpus() {
        exclusion_test(LockKind::Mcs, 2, 6, 20);
    }

    #[test]
    fn uncontested_costs_ordered() {
        let c = uncontested_cost(LockKind::Mcs);
        assert!(c.same_processor < c.same_node);
        assert!(c.same_node < c.remote_node);
        // MCS pays extra ops vs TATAS on the fast path.
        let t = uncontested_cost(LockKind::Tatas);
        assert!(c.same_processor > t.same_processor);
    }

    #[test]
    fn qnodes_are_node_local() {
        let mut m = nucasim::Machine::new(nucasim::MachineConfig::wildfire(2, 2));
        let topo = std::sync::Arc::clone(m.topology());
        let lock = SimMcs::alloc(m.mem_mut(), &topo, NodeId(0));
        for cpu in topo.cpus() {
            let (locked, next) = lock.qnodes[cpu.index()];
            assert_eq!(m.mem().home(locked), topo.node_of(cpu));
            assert_eq!(m.mem().home(next), topo.node_of(cpu));
        }
    }
}

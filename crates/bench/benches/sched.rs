//! Scheduler-in-isolation: replay a recorded fig5 event trace against
//! each [`EventQueue`] implementation.
//!
//! In-engine comparisons mix scheduler cost with program and memory
//! simulation; this bench isolates the queues on a *genuine* event mix —
//! the exact push/pop sequence a fig5 cell (28 processors, HBO,
//! critical_work=1500) issues — rather than a synthetic distribution.
//! The replay checksums popped times so the queues cannot be optimized
//! away and a divergent queue fails loudly.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hbo_locks::LockKind;
use nuca_workloads::modern::{run_modern_recorded, ModernConfig};
use nucasim::sched::{BinHeapQueue, EventQueue, TimeWheel};
use nucasim::{MachineConfig, SchedOp};

/// Records the scheduler-operation stream of one fig5 grid cell.
fn record_fig5_trace() -> Vec<SchedOp> {
    let cfg = ModernConfig {
        kind: LockKind::Hbo,
        machine: MachineConfig::wildfire(2, 14),
        threads: 28,
        iterations: 10,
        critical_work: 1500,
        ..ModernConfig::default()
    };
    let (_, ops) = run_modern_recorded(&cfg);
    assert!(!ops.is_empty(), "recording captured no scheduler ops");
    ops
}

/// Replays `ops` through `q`, returning a checksum of popped times.
fn replay(q: &mut impl EventQueue, ops: &[SchedOp]) -> u64 {
    let mut acc = 0u64;
    for op in ops {
        match *op {
            SchedOp::Push { t, cpu } => q.push(t, cpu),
            SchedOp::Pop => {
                let (t, cpu) = q.pop().expect("trace pops only recorded successes");
                acc = acc.wrapping_mul(31).wrapping_add(t ^ u64::from(cpu));
            }
        }
    }
    acc
}

fn bench_sched(c: &mut Criterion) {
    let ops = record_fig5_trace();

    // Both queues must agree on the full pop sequence before we time them.
    let expect = replay(&mut BinHeapQueue::new(), &ops);
    assert_eq!(
        replay(&mut TimeWheel::new(), &ops),
        expect,
        "wheel and heap disagree on the recorded fig5 trace"
    );

    let mut group = c.benchmark_group("sched_replay_fig5");
    group.throughput(Throughput::Elements(ops.len() as u64));
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("heap", |b| {
        b.iter(|| {
            let mut q = BinHeapQueue::new();
            std::hint::black_box(replay(&mut q, &ops))
        });
    });
    group.bench_function("wheel", |b| {
        b.iter(|| {
            let mut q = TimeWheel::new();
            std::hint::black_box(replay(&mut q, &ops))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);

//! Contended throughput on real threads — the host-hardware analogue of
//! the paper's microbenchmarks (Figs. 3 and 5).
//!
//! Each sample runs a fixed batch of lock-protected increments across
//! several threads and reports the batch time; Criterion divides by the
//! batch size for per-iteration cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hbo_bench::contended_increments;

const ITER_PER_THREAD: u64 = 5_000;

fn bench_contended(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8);
    let mut group = c.benchmark_group(format!("contended_{threads}_threads"));
    group.throughput(Throughput::Elements(ITER_PER_THREAD * threads as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &kind in hbo_locks::LockCatalog::kinds() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.as_str()),
            &kind,
            |b, &kind| {
                b.iter(|| contended_increments(kind, threads, ITER_PER_THREAD));
            },
        );
    }
    // The reactive extension (not one of the paper's eight kinds).
    group.bench_function("REACTIVE", |b| {
        b.iter(|| hbo_bench::contended_increments_reactive(threads, ITER_PER_THREAD));
    });
    group.finish();
}

criterion_group!(benches, bench_contended);
criterion_main!(benches);

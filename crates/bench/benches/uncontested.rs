//! Uncontested acquire+release latency on the host hardware — the
//! real-atomics analogue of the paper's Table 1 "Same Processor" column.
//!
//! The paper's design goal: HBO's uncontested cost should sit in the
//! TATAS class (one atomic), well below the queue locks.

use criterion::{criterion_group, criterion_main, Criterion};
use hbo_bench::uncontested_pair;

fn bench_uncontested(c: &mut Criterion) {
    let mut group = c.benchmark_group("uncontested_acquire_release");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &kind in hbo_locks::LockCatalog::kinds() {
        let lock = kind.instantiate(2);
        group.bench_function(kind.as_str(), |b| {
            b.iter(|| uncontested_pair(std::hint::black_box(&lock)));
        });
    }
    // The reactive extension's uncontested fast path.
    let reactive = hbo_locks::ReactiveLock::new();
    group.bench_function("REACTIVE", |b| {
        use hbo_locks::NucaLock;
        b.iter(|| {
            let t = reactive.acquire(nuca_topology::NodeId(0));
            reactive.release(t);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_uncontested);
criterion_main!(benches);

//! Criterion coverage of every paper artifact at reduced scale: one bench
//! per table/figure generator, so `cargo bench` regenerates the shape of
//! the whole evaluation. The full-scale numbers come from
//! `cargo run --release -p nuca-experiments -- all`.

use criterion::{criterion_group, criterion_main, Criterion};
use nuca_experiments::{run_experiment, Scale, EXPERIMENTS};

fn bench_artifacts(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_artifacts_fast");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for id in EXPERIMENTS {
        group.bench_function(id, |b| {
            b.iter(|| {
                let reports = run_experiment(id, Scale::Fast).expect("known artifact id");
                assert!(!reports.is_empty());
                std::hint::black_box(reports.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_artifacts);
criterion_main!(benches);

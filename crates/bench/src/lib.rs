//! Shared helpers for the Criterion benchmark suite.
//!
//! The benches live in `benches/`:
//!
//! * `uncontested` — real-atomics acquire+release latency per algorithm
//!   (the host-hardware analogue of the paper's Table 1).
//! * `contended` — real-thread contended throughput per algorithm (the
//!   host-hardware analogue of Figs. 3/5).
//! * `sim_experiments` — reduced-scale simulator runs for each paper
//!   artifact, so `cargo bench` exercises every table/figure generator.
//!
//! The paper-shaped results come from the simulator
//! (`cargo run --release -p nuca-experiments -- all`); the real-thread
//! benches here demonstrate the production lock library itself.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hbo_locks::{AnyLock, LockKind, NucaLock};
use nuca_topology::{register_thread, Topology};

/// Runs `iterations` lock-protected increments on each of `threads`
/// real threads; returns the final counter (for verification).
///
/// # Panics
///
/// Panics if an update was lost — i.e. the lock failed.
pub fn contended_increments(kind: LockKind, threads: usize, iterations: u64) -> u64 {
    let topo = Topology::symmetric(2, threads.div_ceil(2).max(1));
    let lock = Arc::new(kind.instantiate(topo.num_nodes()));
    let counter = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for cpu in topo.round_robin_binding(threads) {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            let node = topo.node_of(cpu);
            s.spawn(move || {
                let _reg = register_thread(node);
                for _ in 0..iterations {
                    let token = lock.acquire(node);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(token);
                }
            });
        }
    });
    let total = counter.load(Ordering::Relaxed);
    assert_eq!(total, iterations * threads as u64, "{kind}: lost updates");
    total
}

/// Like [`contended_increments`] for the reactive extension lock.
///
/// # Panics
///
/// Panics if an update was lost.
pub fn contended_increments_reactive(threads: usize, iterations: u64) -> u64 {
    let topo = Topology::symmetric(2, threads.div_ceil(2).max(1));
    let lock = Arc::new(hbo_locks::ReactiveLock::new());
    let counter = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for cpu in topo.round_robin_binding(threads) {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            let node = topo.node_of(cpu);
            s.spawn(move || {
                let _reg = register_thread(node);
                for _ in 0..iterations {
                    let token = lock.acquire(node);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(token);
                }
            });
        }
    });
    let total = counter.load(Ordering::Relaxed);
    assert_eq!(total, iterations * threads as u64, "REACTIVE: lost updates");
    total
}

/// One uncontested acquire+release pair on the calling thread.
pub fn uncontested_pair(lock: &AnyLock) {
    let node = nuca_topology::thread_node();
    let token = lock.acquire(node);
    lock.release(token);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contended_increments_exact() {
        for &kind in hbo_locks::LockCatalog::kinds() {
            assert_eq!(contended_increments(kind, 2, 2_000), 4_000);
        }
    }

    #[test]
    fn reactive_contended_increments_exact() {
        assert_eq!(contended_increments_reactive(2, 2_000), 4_000);
    }

    #[test]
    fn uncontested_pair_runs() {
        for &kind in hbo_locks::LockCatalog::kinds() {
            let lock = kind.instantiate(2);
            uncontested_pair(&lock);
            uncontested_pair(&lock);
        }
    }
}

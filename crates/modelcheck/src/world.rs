//! The checker's world: lock sessions over a flat sequentially-consistent
//! word store.
//!
//! A [`World`] is one configuration of the system: the memory image, each
//! thread's session state and pending command, and who holds the lock.
//! Stepping a thread executes its pending command **atomically together
//! with** the session transition it triggers — the session's local state
//! is invisible to other threads, so giving it its own interleaving point
//! would only square the state space without adding behaviors. `Delay`
//! executes as a no-op, which is exactly what makes the search cover every
//! ordering that real timing could produce.
//!
//! Lock parameters are shrunk to near-trivial backoffs
//! ([`checker_params`]): backoff values only feed `Delay` (semantically
//! inert here) but live inside session state, so small caps keep the
//! reachable state space small without touching the protocol logic.

use std::sync::Arc;

use hbo_locks::BackoffConfig;
use nuca_topology::{CpuId, NodeId};
use nucasim::{Addr, Command, CpuCtx, EventLog, Machine, MachineConfig, SimStats};
use nucasim_locks::{build_lock, mutants, GtSlots, LockSession, SimLock, SimLockParams, Step};

use crate::{CheckConfig, Subject, Violation};

/// Lock tunables used for checking: minimal backoffs (delays are no-ops
/// here, but their counters are session state), a tiny anger threshold so
/// HBO_GT_SD's starvation machinery is actually reachable, a tiny RH
/// handover budget so both release tags are exercised, a tiny CNA
/// splice threshold so the secondary-queue splice path is reachable at
/// checker scale, and a one-slot TWA waiting array so every ticket
/// collides — the spurious-wakeup re-park path is explored, not just the
/// collision-free fast path.
pub fn checker_params() -> SimLockParams {
    SimLockParams {
        local: BackoffConfig::new(1, 2, 2),
        remote: BackoffConfig::new(1, 2, 2),
        get_angry_limit: 2,
        rh_max_handovers: 2,
        cna_splice_threshold: 2,
        twa_slots: 1,
        twa_hash: nucasim_locks::TwaHash::Mod,
    }
}

/// Where a thread is in its acquire/release loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Driving `start_acquire`/`resume_acquire`.
    Acquire,
    /// Holding (or releasing): driving `start_release`/`resume_release`.
    Release,
    /// All iterations finished.
    Done,
}

/// Global progress classification of a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Some thread can step.
    Running,
    /// Every thread finished its iterations.
    Done,
    /// Not all threads are done, yet none can step.
    Deadlock,
}

#[derive(Debug)]
struct Thread {
    session: Box<dyn LockSession>,
    cpu: CpuId,
    node: NodeId,
    phase: Phase,
    pending: Option<Command>,
    iters_left: u32,
    acquires: u32,
}

#[derive(Clone, Copy)]
enum Call {
    StartAcquire,
    ResumeAcquire(Option<u64>),
    StartRelease,
    ResumeRelease(Option<u64>),
    RecordAcquire,
    RecordRelease,
}

/// One explorable configuration of lock + contenders.
#[derive(Debug)]
pub struct World {
    mem: Vec<u64>,
    threads: Vec<Thread>,
    holder: Option<usize>,
    clock: u64,
    stats: SimStats,
    /// Flat-store indices of the per-node GT `is_spinning` words.
    slots: Vec<usize>,
    trace: Option<EventLog>,
}

impl World {
    /// Builds the initial world for `cfg` (no tracing).
    pub fn new(cfg: &CheckConfig) -> World {
        World::build(cfg, None)
    }

    /// Builds the initial world with a trace sink installed, so session
    /// hooks (backoff sleeps, anger episodes, acquire/release) land in
    /// `log` during replay — the counterexample renderer's input.
    pub fn with_trace(cfg: &CheckConfig, log: EventLog) -> World {
        World::build(cfg, Some(log))
    }

    fn build(cfg: &CheckConfig, trace: Option<EventLog>) -> World {
        assert!(cfg.cpus >= 1, "need at least one thread");
        assert!(cfg.iters >= 1, "need at least one iteration");
        let cpn = cfg.cpus.div_ceil(2).max(1);
        let mut machine = Machine::new(MachineConfig::wildfire(2, cpn));
        let topo = Arc::clone(machine.topology());
        let gt = GtSlots::alloc(machine.mem_mut(), &topo);
        let params = checker_params();
        let home = NodeId(0);
        let lock: Box<dyn SimLock> = match cfg.subject {
            Subject::Kind(k) => build_lock(k, machine.mem_mut(), &topo, &gt, home, &params),
            Subject::RacyTatas => Box::new(mutants::RacyTatas::alloc(machine.mem_mut(), home)),
            Subject::LeakyHboGt => Box::new(mutants::LeakyHboGt::alloc(
                machine.mem_mut(),
                home,
                gt.clone(),
                params.local,
                params.remote,
            )),
            Subject::SpliceLostCna => Box::new(mutants::SpliceLostCna::alloc(
                machine.mem_mut(),
                &topo,
                home,
                params.cna_splice_threshold,
            )),
        };
        // Snapshot the allocator's memory image into the flat store (lock
        // constructors poke initial values, e.g. CLH's tail/dummy and RH's
        // per-node copies).
        let mem: Vec<u64> = (0..machine.mem().len())
            .map(|i| {
                let addr = Addr::decode(i as u64 + 1).expect("dense address space");
                machine.mem().peek(addr)
            })
            .collect();
        let slots: Vec<usize> = topo.nodes().map(|n| gt.slot(n).index()).collect();

        let mut threads = Vec::with_capacity(cfg.cpus);
        let mut per_node = [0usize; 2];
        for t in 0..cfg.cpus {
            let node = NodeId(t % 2);
            let cpu = CpuId(node.index() * cpn + per_node[node.index()]);
            per_node[node.index()] += 1;
            debug_assert_eq!(topo.node_of(cpu), node);
            threads.push(Thread {
                session: lock.session(cpu, node),
                cpu,
                node,
                phase: Phase::Acquire,
                pending: None,
                iters_left: cfg.iters,
                acquires: 0,
            });
        }
        let mut world = World {
            mem,
            threads,
            holder: None,
            clock: 0,
            stats: SimStats::default(),
            slots,
            trace,
        };
        for t in 0..world.threads.len() {
            let step = world.call(t, Call::StartAcquire).expect("start yields a step");
            world
                .absorb(t, step)
                .expect("no violation can precede the first command");
        }
        world
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Can thread `t` take a step right now? `false` once done, and for a
    /// pending `WaitWhile` whose watched word still holds the sleep value.
    pub fn enabled(&self, t: usize) -> bool {
        match self.threads[t].pending {
            None => false,
            Some(Command::WaitWhile { addr, equals }) => self.mem[addr.index()] != equals,
            Some(_) => true,
        }
    }

    /// The command thread `t` would execute next.
    pub fn pending(&self, t: usize) -> Option<Command> {
        self.threads[t].pending
    }

    /// Placement and phase of thread `t`, for rendering.
    pub fn thread_meta(&self, t: usize) -> (CpuId, NodeId, Phase) {
        let th = &self.threads[t];
        (th.cpu, th.node, th.phase)
    }

    /// Successful acquisitions of thread `t` so far.
    pub fn acquires(&self, t: usize) -> u32 {
        self.threads[t].acquires
    }

    /// Current value of flat-store word `idx`.
    pub fn peek_word(&self, idx: usize) -> u64 {
        self.mem[idx]
    }

    /// Global progress classification.
    pub fn status(&self) -> Status {
        let mut all_done = true;
        let mut any_enabled = false;
        for (t, th) in self.threads.iter().enumerate() {
            if th.phase != Phase::Done {
                all_done = false;
                if self.enabled(t) {
                    any_enabled = true;
                }
            }
        }
        if all_done {
            Status::Done
        } else if any_enabled {
            Status::Running
        } else {
            Status::Deadlock
        }
    }

    /// Terminal-state check (property 4): once everything is done, every
    /// GT `is_spinning` slot must be back to 0.
    pub fn final_violation(&self) -> Option<Violation> {
        debug_assert_eq!(self.status(), Status::Done);
        for &slot in &self.slots {
            let value = self.mem[slot];
            if value != 0 {
                return Some(Violation::SlotLeak { slot, value });
            }
        }
        None
    }

    /// Executes thread `t`'s pending command against the store and feeds
    /// the result to its session, absorbing session transitions until the
    /// thread either has a new pending command or is done. Returns the
    /// executed command's result value.
    ///
    /// # Panics
    ///
    /// Panics if `t` has no pending command (check [`World::enabled`]);
    /// stepping a *blocked* `WaitWhile` is a checker bug caught by a debug
    /// assertion.
    pub fn step(&mut self, t: usize) -> Result<Option<u64>, Violation> {
        let cmd = self.threads[t]
            .pending
            .take()
            .expect("step on a thread with no pending command");
        let result = self.exec(cmd);
        self.clock += 1;
        let step = match self.threads[t].phase {
            Phase::Acquire => self.call(t, Call::ResumeAcquire(result)),
            Phase::Release => self.call(t, Call::ResumeRelease(result)),
            Phase::Done => unreachable!("done threads have no pending command"),
        }
        .expect("resume yields a step");
        self.absorb(t, step)?;
        Ok(result)
    }

    /// Applies `cmd` to the flat store; sequentially consistent because
    /// there is exactly one store and steps are serialized.
    fn exec(&mut self, cmd: Command) -> Option<u64> {
        match cmd {
            Command::Read(a) => Some(self.mem[a.index()]),
            Command::Write(a, v) => {
                let old = self.mem[a.index()];
                self.mem[a.index()] = v;
                Some(old)
            }
            Command::Cas {
                addr,
                expected,
                new,
            } => {
                let old = self.mem[addr.index()];
                if old == expected {
                    self.mem[addr.index()] = new;
                }
                Some(old)
            }
            Command::Swap { addr, value } => {
                let old = self.mem[addr.index()];
                self.mem[addr.index()] = value;
                Some(old)
            }
            Command::Tas(a) => {
                let old = self.mem[a.index()];
                self.mem[a.index()] = 1;
                Some(old)
            }
            Command::FetchAdd { addr, delta } => {
                let old = self.mem[addr.index()];
                self.mem[addr.index()] = old.wrapping_add(delta);
                Some(old)
            }
            // Timing is deliberately absent: a delay is a scheduling
            // point and nothing else.
            Command::Delay(_) => None,
            Command::WaitWhile { addr, equals } => {
                let v = self.mem[addr.index()];
                debug_assert_ne!(v, equals, "stepped a blocked WaitWhile");
                Some(v)
            }
            Command::Done => unreachable!("lock sessions never emit Done"),
        }
    }

    /// Drives `t`'s session bookkeeping after a step: stores the next
    /// command, or handles `Acquired`/`Released` (mutual-exclusion check,
    /// phase flip, next phase start) — all atomic with the step itself.
    fn absorb(&mut self, t: usize, mut step: Step) -> Result<(), Violation> {
        loop {
            match step {
                Step::Op(cmd) => {
                    self.threads[t].pending = Some(cmd);
                    return Ok(());
                }
                Step::Acquired => {
                    if let Some(first) = self.holder {
                        return Err(Violation::MutualExclusion { first, second: t });
                    }
                    self.holder = Some(t);
                    self.threads[t].acquires += 1;
                    self.threads[t].phase = Phase::Release;
                    self.call(t, Call::RecordAcquire);
                    step = self.call(t, Call::StartRelease).expect("start yields a step");
                }
                Step::Released => {
                    debug_assert_eq!(self.holder, Some(t), "released without holding");
                    self.holder = None;
                    self.call(t, Call::RecordRelease);
                    self.threads[t].iters_left -= 1;
                    if self.threads[t].iters_left == 0 {
                        self.threads[t].phase = Phase::Done;
                        self.threads[t].pending = None;
                        return Ok(());
                    }
                    self.threads[t].phase = Phase::Acquire;
                    step = self.call(t, Call::StartAcquire).expect("start yields a step");
                }
            }
        }
    }

    /// Invokes one session entry point (or a pure trace hook) with a
    /// properly wired [`CpuCtx`].
    fn call(&mut self, t: usize, what: Call) -> Option<Step> {
        fn run(
            session: &mut Box<dyn LockSession>,
            ctx: &mut CpuCtx<'_>,
            what: Call,
        ) -> Option<Step> {
            match what {
                Call::StartAcquire => Some(session.start_acquire(ctx)),
                Call::ResumeAcquire(r) => Some(session.resume_acquire(ctx, r)),
                Call::StartRelease => Some(session.start_release(ctx)),
                Call::ResumeRelease(r) => Some(session.resume_release(ctx, r)),
                Call::RecordAcquire => {
                    ctx.record_acquire(0);
                    None
                }
                Call::RecordRelease => {
                    ctx.record_release(0, 0);
                    None
                }
            }
        }
        let World {
            threads,
            stats,
            trace,
            clock,
            ..
        } = self;
        let th = &mut threads[t];
        match trace.as_mut() {
            Some(log) => {
                let mut ctx = CpuCtx::with_trace(th.cpu, th.node, *clock, stats, log);
                run(&mut th.session, &mut ctx, what)
            }
            None => {
                let mut ctx = CpuCtx::new(th.cpu, th.node, *clock, stats);
                run(&mut th.session, &mut ctx, what)
            }
        }
    }

    /// Hashes the semantic state — memory image, holder, and every
    /// thread's phase, pending command, remaining iterations, and full
    /// session state (via `Debug`, which derives on every session struct
    /// and therefore covers every field). The clock and statistics are
    /// deliberately excluded: they are observers, not state.
    ///
    /// `buf` is scratch space the caller reuses across calls.
    pub fn state_key(&self, buf: &mut String) -> u64 {
        use std::fmt::Write as _;
        buf.clear();
        for v in &self.mem {
            let _ = write!(buf, "{v},");
        }
        let _ = write!(buf, "|{:?}|", self.holder);
        for th in &self.threads {
            let _ = write!(
                buf,
                "{:?}/{:?}/{}/{:?};",
                th.phase, th.pending, th.iters_left, th.session
            );
        }
        fnv1a(buf.as_bytes())
    }
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbo_locks::LockKind;

    fn cfg(subject: Subject) -> CheckConfig {
        CheckConfig::new(subject)
    }

    #[test]
    fn initial_world_is_running_and_all_enabled() {
        let w = World::new(&cfg(Subject::Kind(LockKind::Tatas)));
        assert_eq!(w.status(), Status::Running);
        assert_eq!(w.num_threads(), 2);
        assert!(w.enabled(0));
        assert!(w.enabled(1));
        assert!(matches!(w.pending(0), Some(Command::Tas(_))));
    }

    #[test]
    fn serial_schedule_completes_every_kind() {
        for &subject in Subject::verified() {
            let cfg = cfg(subject);
            let mut w = World::new(&cfg);
            let mut steps = 0u64;
            'outer: loop {
                match w.status() {
                    Status::Done => break,
                    Status::Deadlock => panic!("{}: deadlock on serial schedule", subject.name()),
                    Status::Running => {}
                }
                for t in 0..w.num_threads() {
                    if w.enabled(t) {
                        w.step(t).unwrap_or_else(|v| {
                            panic!("{}: violation on serial schedule: {v}", subject.name())
                        });
                        steps += 1;
                        assert!(steps < 1_000_000, "{}: runaway", subject.name());
                        continue 'outer;
                    }
                }
                unreachable!();
            }
            assert_eq!(w.final_violation(), None, "{}", subject.name());
            for t in 0..w.num_threads() {
                assert_eq!(w.acquires(t), cfg.iters, "{}", subject.name());
            }
        }
    }

    #[test]
    fn waitwhile_blocks_and_wakes() {
        // TATAS: let thread 0 take the lock; thread 1's failed TAS parks
        // it on a WaitWhile that must be disabled until the release.
        let mut w = World::new(&cfg(Subject::Kind(LockKind::Tatas)));
        w.step(0).unwrap(); // t0: TAS wins -> holding, release write pending
        w.step(1).unwrap(); // t1: TAS loses -> WaitWhile(word == HELD)
        assert!(!w.enabled(1), "t1 must be parked while the lock is held");
        assert_eq!(w.status(), Status::Running);
        w.step(0).unwrap(); // t0: release write -> word FREE
        assert!(w.enabled(1), "release must wake t1");
    }

    #[test]
    fn state_key_distinguishes_and_matches() {
        let c = cfg(Subject::Kind(LockKind::Hbo));
        let mut buf = String::new();
        let w1 = World::new(&c);
        let w2 = World::new(&c);
        assert_eq!(
            w1.state_key(&mut buf),
            w2.state_key(&mut buf),
            "identical builds hash identically"
        );
        let mut w3 = World::new(&c);
        w3.step(0).unwrap();
        assert_ne!(w1.state_key(&mut buf), w3.state_key(&mut buf));
    }

    #[test]
    fn mutex_violation_detected_on_racy_schedule() {
        // RacyTatas: read/read/write/write both acquire.
        let mut w = World::new(&cfg(Subject::RacyTatas));
        w.step(0).unwrap(); // t0 reads FREE
        w.step(1).unwrap(); // t1 reads FREE
        w.step(0).unwrap(); // t0 writes HELD -> acquired
        let err = w.step(1).unwrap_err(); // t1 writes HELD -> acquired too
        assert_eq!(err, Violation::MutualExclusion { first: 0, second: 1 });
    }
}

//! Stateless replay-based DFS over thread interleavings.
//!
//! The search keeps exactly one live [`World`]. Descending executes steps
//! in place; backtracking rebuilds the world from the (deterministic)
//! initial configuration and replays the remaining schedule prefix. That
//! trades CPU for memory: no state snapshots, just the schedule — the
//! classic stateless model-checking design (Verisoft/CHESS lineage).
//!
//! A state-hash dedup cache bounds the search: a state already visited at
//! the same or smaller depth cannot lead anywhere new. With a preemption
//! bound configured, the spent budget is folded into the hash (fewer
//! preemptions spent = strictly more futures, so the plain hash would
//! prune unsoundly).

use std::collections::HashMap;

use crate::world::{Status, World};
use crate::{CheckConfig, Violation};

/// Exploration counters for one [`explore`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states inserted into the dedup cache.
    pub distinct_states: u64,
    /// Steps executed while exploring (excludes shrink replays).
    pub transitions: u64,
    /// World (re)builds: 1 + number of backtracks.
    pub executions: u64,
    /// Paths cut by the depth safety net; nonzero means non-exhaustive.
    pub truncated: u64,
    /// Longest schedule reached.
    pub max_depth: usize,
}

/// A violating schedule, shrunk to a minimal reproducing prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The property that failed.
    pub violation: Violation,
    /// Thread ids to step, in order, from the initial state.
    pub schedule: Vec<usize>,
}

struct Frame {
    /// Sibling choices at this state (thread ids), favorite first.
    choices: Vec<usize>,
    /// How many of `choices` have been explored.
    taken: usize,
    /// Preemption budget spent reaching this state.
    preempts: u32,
    /// The thread that stepped into this state, and whether it could have
    /// stepped again (so leaving it costs a preemption).
    last: Option<usize>,
    last_enabled: bool,
}

/// Exhaustively explores every interleaving of `cfg` (up to the preemption
/// bound, if any), returning statistics and the first violation found —
/// already shrunk.
///
/// Invariant: `frames[i]` belongs to the state reached by
/// `schedule[..i]`; a frame exists for the current state exactly when
/// `frames.len() == schedule.len() + 1` (pruned states get none).
pub fn explore(cfg: &CheckConfig) -> (ExploreStats, Option<Counterexample>) {
    let mut stats = ExploreStats::default();
    let mut visited: HashMap<u64, u32> = HashMap::new();
    let mut schedule: Vec<usize> = Vec::new();
    let mut frames: Vec<Frame> = Vec::new();
    let mut buf = String::new();
    let mut world = World::new(cfg);
    stats.executions = 1;
    // Preemption budget spent to reach the current world state.
    let mut enter_preempts = 0u32;

    'outer: loop {
        let depth = schedule.len();
        stats.max_depth = stats.max_depth.max(depth);
        let mut expand = false;
        let mut violation = None;
        match world.status() {
            Status::Done => violation = world.final_violation(),
            Status::Deadlock => violation = Some(Violation::Deadlock),
            Status::Running => {
                if depth >= cfg.depth {
                    stats.truncated += 1;
                } else {
                    let mut key = world.state_key(&mut buf);
                    if let Some(bound) = cfg.preempt {
                        key ^= u64::from(bound.saturating_sub(enter_preempts))
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    }
                    match visited.get(&key) {
                        Some(&d) if d as usize <= depth => {}
                        Some(_) => {
                            visited.insert(key, depth as u32);
                            expand = true;
                        }
                        None => {
                            visited.insert(key, depth as u32);
                            stats.distinct_states += 1;
                            expand = true;
                        }
                    }
                }
            }
        }
        if let Some(v) = violation {
            return (stats, Some(shrink(cfg, v, schedule)));
        }
        if expand {
            let last = schedule.last().copied();
            let last_enabled = last.is_some_and(|l| world.enabled(l));
            let mut choices = Vec::new();
            // Favorite first: keep running the thread that just ran — the
            // non-preempting child — then the others in id order.
            if let Some(l) = last {
                if last_enabled {
                    choices.push(l);
                }
            }
            let budget_left = cfg.preempt.is_none_or(|b| enter_preempts < b);
            if !last_enabled || budget_left {
                for t in 0..world.num_threads() {
                    if Some(t) != last && world.enabled(t) {
                        choices.push(t);
                    }
                }
            }
            frames.push(Frame {
                choices,
                taken: 0,
                preempts: enter_preempts,
                last,
                last_enabled,
            });
        }
        // Advance: take the next untaken sibling of the deepest live
        // frame, backtracking (pop + replay) past exhausted frames and
        // pruned states.
        loop {
            if frames.len() > schedule.len() {
                let frame = frames.last_mut().expect("nonempty by comparison");
                if frame.taken < frame.choices.len() {
                    let t = frame.choices[frame.taken];
                    frame.taken += 1;
                    let preempt_step = frame.last_enabled && frame.last.is_some_and(|l| l != t);
                    enter_preempts = frame.preempts + u32::from(preempt_step);
                    schedule.push(t);
                    stats.transitions += 1;
                    if let Err(v) = world.step(t) {
                        return (stats, Some(shrink(cfg, v, schedule)));
                    }
                    continue 'outer;
                }
                frames.pop();
            }
            if schedule.is_empty() {
                return (stats, None);
            }
            schedule.pop();
            world = World::new(cfg);
            stats.executions += 1;
            for &t in &schedule {
                world
                    .step(t)
                    .expect("replaying a previously clean prefix cannot fail");
            }
        }
    }
}

/// Replays `schedule` from the initial state with **skip semantics**:
/// entries naming a blocked or finished thread are dropped. Returns the
/// violation hit (if any) together with the entries actually executed.
/// Deadlock and terminal slot checks run when the schedule is exhausted
/// or everything finished early.
pub fn replay_violation(
    cfg: &CheckConfig,
    schedule: &[usize],
) -> Option<(Violation, Vec<usize>)> {
    let mut world = World::new(cfg);
    let mut used = Vec::new();
    for &t in schedule {
        match world.status() {
            Status::Done => break,
            Status::Deadlock => return Some((Violation::Deadlock, used)),
            Status::Running => {}
        }
        if t >= world.num_threads() || !world.enabled(t) {
            continue;
        }
        used.push(t);
        if let Err(v) = world.step(t) {
            return Some((v, used));
        }
    }
    match world.status() {
        Status::Done => world.final_violation().map(|v| (v, used)),
        Status::Deadlock => Some((Violation::Deadlock, used)),
        Status::Running => None,
    }
}

/// Delta debugging (ddmin) over schedule entries: repeatedly drop a
/// contiguous chunk — halves first, then ever finer, down to single
/// entries — keeping any candidate that still reproduces the same *kind*
/// of violation. Chunk removal matters: schedules are brittle under
/// single-entry removal (dropping one step desynchronizes everything
/// after it), but removing a whole burst of one thread's steps often
/// leaves a still-racing core. Deterministic, so shrunk lengths are
/// stable run-to-run — the mutant regression tests assert them.
pub fn shrink_schedule(
    cfg: &CheckConfig,
    violation: Violation,
    schedule: Vec<usize>,
) -> Counterexample {
    shrink(cfg, violation, schedule)
}

fn shrink(cfg: &CheckConfig, violation: Violation, schedule: Vec<usize>) -> Counterexample {
    let target = violation.kind_str();
    let (mut best_v, mut best) = match replay_violation(cfg, &schedule) {
        Some((v, used)) if v.kind_str() == target => (v, used),
        // Replay disagreeing with the search would be a checker bug; keep
        // the raw schedule rather than panic in a diagnostics path.
        _ => (violation, schedule),
    };
    let mut n = 2usize; // current granularity: chunks of len/n
    while best.len() >= 2 && n <= best.len() {
        let chunk = best.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < best.len() {
            let end = (start + chunk).min(best.len());
            let candidate: Vec<usize> = best[..start]
                .iter()
                .chain(best[end..].iter())
                .copied()
                .collect();
            if let Some((v, used)) = replay_violation(cfg, &candidate) {
                if v.kind_str() == target && used.len() < best.len() {
                    best_v = v;
                    best = used;
                    n = n.saturating_sub(1).max(2);
                    reduced = true;
                    break;
                }
            }
            start = end;
        }
        if !reduced {
            if chunk == 1 {
                break;
            }
            n = (n * 2).min(best.len());
        }
    }
    Counterexample {
        violation: best_v,
        schedule: best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Subject;
    use hbo_locks::LockKind;

    #[test]
    fn tatas_two_cpus_is_clean_and_small() {
        let cfg = CheckConfig::new(Subject::Kind(LockKind::Tatas));
        let (stats, cex) = explore(&cfg);
        assert!(cex.is_none(), "{cex:?}");
        assert_eq!(stats.truncated, 0);
        assert!(stats.distinct_states > 10, "{stats:?}");
        assert!(stats.distinct_states < 10_000, "{stats:?}");
    }

    #[test]
    fn racy_tatas_caught_and_shrunk_to_minimum() {
        let cfg = CheckConfig::new(Subject::RacyTatas);
        let (_, cex) = explore(&cfg);
        let cex = cex.expect("the race must be found");
        assert!(matches!(cex.violation, Violation::MutualExclusion { .. }));
        // Minimal witness: read, read, claim, claim.
        assert_eq!(cex.schedule.len(), 4, "{:?}", cex.schedule);
        // And it replays to the same violation.
        let (v, used) = replay_violation(&cfg, &cex.schedule).expect("replayable");
        assert_eq!(v.kind_str(), "mutual-exclusion");
        assert_eq!(used, cex.schedule);
    }

    #[test]
    fn preemption_bound_gates_the_racy_tatas_race() {
        // The race needs two preemptions: away from a thread between its
        // check and its act, then back to it after the rival claimed. So
        // bounds 0 and 1 must come up clean, bound 2 must find it.
        for (bound, caught) in [(0, false), (1, false), (2, true)] {
            let mut cfg = CheckConfig::new(Subject::RacyTatas);
            cfg.preempt = Some(bound);
            let (_, cex) = explore(&cfg);
            assert_eq!(cex.is_some(), caught, "bound {bound}: {cex:?}");
        }
    }

    #[test]
    fn replay_skips_blocked_entries() {
        let cfg = CheckConfig::new(Subject::Kind(LockKind::Tatas));
        // 0,0 takes and releases; interleaved 1s are fine; trailing junk
        // ids and blocked entries are skipped, and the run is clean.
        assert_eq!(replay_violation(&cfg, &[0, 1, 0, 1, 9, 0, 1, 0, 1, 0, 1]), None);
    }
}

//! Bounded-random-schedule fallback for configurations too large to
//! exhaust.
//!
//! Runs `n` schedules, each picking uniformly among the enabled threads
//! with the in-repo [`SplitMix64`] generator. Everything is derived from
//! the seed, so a run is byte-reproducible: same seed, same schedules,
//! same outcome — the property the `--random`/`--seed` CLI contract and
//! the reproducibility test rely on.

use nucasim::SplitMix64;

use crate::dfs::{self, Counterexample};
use crate::world::{Status, World};
use crate::{CheckConfig, Violation};

/// Outcome of a [`check_random`] run. `PartialEq` so reproducibility can
/// be asserted structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomOutcome {
    /// Schedules executed (stops early on a violation).
    pub schedules: u64,
    /// Total steps across all schedules.
    pub steps: u64,
    /// First violation found, shrunk.
    pub violation: Option<Counterexample>,
}

impl RandomOutcome {
    /// Did all sampled schedules pass?
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

/// Runs `n` random schedules seeded with `seed`.
pub fn check_random(cfg: &CheckConfig, n: u64, seed: u64) -> RandomOutcome {
    let mut rng = SplitMix64::new(seed);
    let mut steps = 0u64;
    for i in 0..n {
        let mut world = World::new(cfg);
        let mut schedule: Vec<usize> = Vec::new();
        let violation = loop {
            match world.status() {
                Status::Done => break world.final_violation(),
                Status::Deadlock => break Some(Violation::Deadlock),
                Status::Running => {}
            }
            if schedule.len() >= cfg.depth {
                // Truncated schedule: no verdict, move on.
                break None;
            }
            let enabled: Vec<usize> =
                (0..world.num_threads()).filter(|&t| world.enabled(t)).collect();
            let t = enabled[rng.next_below(enabled.len() as u64) as usize];
            schedule.push(t);
            steps += 1;
            match world.step(t) {
                Ok(_) => {}
                Err(v) => break Some(v),
            }
        };
        if let Some(v) = violation {
            return RandomOutcome {
                schedules: i + 1,
                steps,
                violation: Some(dfs::shrink_schedule(cfg, v, schedule)),
            };
        }
    }
    RandomOutcome {
        schedules: n,
        steps,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Subject;
    use hbo_locks::LockKind;

    #[test]
    fn reproducible_per_seed() {
        let cfg = CheckConfig::new(Subject::Kind(LockKind::Hbo));
        let a = check_random(&cfg, 25, 0xFEED);
        let b = check_random(&cfg, 25, 0xFEED);
        assert_eq!(a, b, "same seed must give a byte-identical outcome");
        assert!(a.passed());
        let c = check_random(&cfg, 25, 0xBEEF);
        // Different seed: still passing, but (almost surely) different
        // step totals — the schedules genuinely differ.
        assert!(c.passed());
    }

    #[test]
    fn random_mode_catches_the_racy_mutant() {
        // The race fires on any schedule that splits one thread's
        // check/act pair; 64 random schedules find it with near
        // certainty, deterministically for a fixed seed.
        let cfg = CheckConfig::new(Subject::RacyTatas);
        let out = check_random(&cfg, 64, 1);
        let cex = out.violation.expect("race found");
        assert!(matches!(cex.violation, Violation::MutualExclusion { .. }));
    }
}

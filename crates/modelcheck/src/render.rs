//! Counterexample rendering: replay a shrunk schedule through the
//! `nucasim` trace layer and print it as a readable event log.
//!
//! The replay world gets an [`EventLog`] installed, so every trace hook
//! the sessions fire (backoff sleeps, throttle announcements, anger
//! episodes, acquire/release) is captured and printed under the step that
//! produced it — the same vocabulary as a traced simulator run, which is
//! what makes the counterexample directly comparable to `nucasim` output.

use std::fmt::Write as _;

use nucasim::EventLog;

use crate::dfs::Counterexample;
use crate::world::{Status, World};
use crate::{CheckConfig, Violation};

/// Renders `cex` as a multi-line report: header, one line per executed
/// step (with any trace events indented beneath), and a terminal
/// explanation of the violated property.
pub fn render(cfg: &CheckConfig, cex: &Counterexample) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "counterexample for {} (cpus={}, iters={}): {}",
        cfg.subject.name(),
        cfg.cpus,
        cfg.iters,
        cex.violation
    );
    let _ = writeln!(out, "schedule (thread ids): {:?}", cex.schedule);

    let log = EventLog::new();
    let mut world = World::with_trace(cfg, log.clone());
    // Session construction may already trace (it does not today, but the
    // header spot is where such events belong).
    dump_events(&mut out, &log);

    for (i, &t) in cex.schedule.iter().enumerate() {
        if t >= world.num_threads() || !world.enabled(t) {
            let _ = writeln!(out, "#{i:03} t{t} (skipped: not runnable here)");
            continue;
        }
        let (cpu, node, phase) = world.thread_meta(t);
        let cmd = world.pending(t).expect("enabled implies pending");
        match world.step(t) {
            Ok(result) => {
                let _ = writeln!(
                    out,
                    "#{i:03} t{t} cpu{}@node{} {phase:?} {cmd:?} -> {}",
                    cpu.index(),
                    node.index(),
                    match result {
                        Some(v) => v.to_string(),
                        None => "()".to_owned(),
                    }
                );
                dump_events(&mut out, &log);
            }
            Err(v) => {
                let _ = writeln!(
                    out,
                    "#{i:03} t{t} cpu{}@node{} {phase:?} {cmd:?} -> !! {v}",
                    cpu.index(),
                    node.index(),
                );
                dump_events(&mut out, &log);
                return out;
            }
        }
    }

    // The schedule ran out without a step-level violation: the failure is
    // a property of the final state.
    match world.status() {
        Status::Deadlock => {
            let _ = writeln!(out, "final state: deadlock — every remaining thread is blocked:");
            for t in 0..world.num_threads() {
                let (cpu, node, phase) = world.thread_meta(t);
                match world.pending(t) {
                    Some(cmd) => {
                        let _ = writeln!(
                            out,
                            "  t{t} cpu{}@node{} {phase:?} blocked on {cmd:?}",
                            cpu.index(),
                            node.index(),
                        );
                    }
                    None => {
                        let _ = writeln!(out, "  t{t} finished all iterations");
                    }
                }
            }
        }
        Status::Done => {
            if let Some(Violation::SlotLeak { slot, value }) = world.final_violation() {
                let _ = writeln!(
                    out,
                    "final state: all threads done, but is_spinning word {slot} \
                     still holds {value} (a gate no future contender could pass)"
                );
            }
        }
        Status::Running => {
            let _ = writeln!(out, "final state: still running (schedule was a prefix)");
        }
    }
    out
}

fn dump_events(out: &mut String, log: &EventLog) {
    for rec in log.take() {
        let _ = writeln!(out, "        trace: {:?}", rec.event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dfs, Subject};

    #[test]
    fn racy_counterexample_renders_readably() {
        let cfg = crate::CheckConfig::new(Subject::RacyTatas);
        let (_, cex) = dfs::explore(&cfg);
        let cex = cex.expect("race found");
        let text = render(&cfg, &cex);
        assert!(text.contains("mutual exclusion"), "{text}");
        assert!(text.contains("#000"), "{text}");
        assert!(text.contains("Read"), "{text}");
        assert!(text.contains("!!"), "{text}");
    }

    #[test]
    fn leaky_counterexample_explains_the_terminal_state() {
        let cfg = crate::CheckConfig::new(Subject::LeakyHboGt);
        let (_, cex) = dfs::explore(&cfg);
        let cex = cex.expect("leak found");
        let text = render(&cfg, &cex);
        assert!(text.contains("final state:"), "{text}");
    }
}

//! Small, testable pieces of the command-line surface.
//!
//! Mirrors `nuca-experiments`' convention: the binary in `main.rs` is all
//! I/O; value parsing lives here so rejection behavior (a bad `--cpus` is
//! a usage error, exactly like an unknown flag) is covered by unit tests.

use hbo_locks::LockKind;

use crate::Subject;

/// Parses the operand of a positive-integer flag (`--cpus`, `--iters`,
/// `--depth`, `--preempt`, `--random`), naming `flag` in the message.
///
/// # Errors
///
/// Returns a message naming the flag and offending value when the operand
/// is missing, not a number, negative, or zero.
pub fn parse_count(flag: &str, value: Option<&str>) -> Result<u64, String> {
    let Some(raw) = value else {
        return Err(format!("{flag} requires a positive integer"));
    };
    match raw.parse::<i128>() {
        Ok(n) if n >= 1 => {
            u64::try_from(n).map_err(|_| format!("{flag} {raw} is out of range"))
        }
        Ok(_) => Err(format!("{flag} must be a positive integer (got {raw})")),
        Err(_) => Err(format!("{flag} must be a positive integer (got `{raw}`)")),
    }
}

/// Parses the operand of `--seed`: any u64, zero included.
///
/// # Errors
///
/// Returns a message when the operand is missing or not a u64.
pub fn parse_seed(value: Option<&str>) -> Result<u64, String> {
    let Some(raw) = value else {
        return Err("--seed requires an unsigned integer".to_owned());
    };
    raw.parse::<u64>()
        .map_err(|_| format!("--seed must be an unsigned integer (got `{raw}`)"))
}

/// Parses the operand of `--kind`: `all` (every verified subject), a
/// registered [`LockKind`] name, or one of the extension/mutant names.
/// Case-insensitive, like the simulator's own kind parsing.
///
/// # Errors
///
/// Returns a message listing the valid names when the operand is missing
/// or unknown.
pub fn parse_subjects(value: Option<&str>) -> Result<Vec<Subject>, String> {
    let Some(raw) = value else {
        return Err("--kind requires a lock name or `all`".to_owned());
    };
    if raw.eq_ignore_ascii_case("all") {
        return Ok(Subject::verified().to_vec());
    }
    let all = Subject::verified().iter().chain(Subject::MUTANTS.iter());
    for &subject in all {
        if raw.eq_ignore_ascii_case(subject.name()) {
            return Ok(vec![subject]);
        }
    }
    // Registered kinds also parse through their own FromStr aliases.
    if let Ok(kind) = raw.parse::<LockKind>() {
        return Ok(vec![Subject::Kind(kind)]);
    }
    let names: Vec<&str> = Subject::verified()
        .iter()
        .chain(Subject::MUTANTS.iter())
        .map(|s| s.name())
        .collect();
    Err(format!(
        "unknown lock `{raw}`; expected `all` or one of: {}",
        names.join(", ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_accepts_positive() {
        assert_eq!(parse_count("--cpus", Some("2")), Ok(2));
        assert_eq!(parse_count("--depth", Some("100000")), Ok(100_000));
    }

    #[test]
    fn count_rejects_zero_negative_and_garbage() {
        for bad in ["0", "-1", "two", "", "2.5", "2x"] {
            let err = parse_count("--cpus", Some(bad)).unwrap_err();
            assert!(err.contains("--cpus"), "{bad}: {err}");
            assert!(err.contains("positive integer"), "{bad}: {err}");
        }
        assert!(parse_count("--cpus", None).is_err());
    }

    #[test]
    fn seed_accepts_zero_and_rejects_garbage() {
        assert_eq!(parse_seed(Some("0")), Ok(0));
        assert_eq!(parse_seed(Some("42")), Ok(42));
        assert!(parse_seed(Some("-1")).is_err());
        assert!(parse_seed(Some("nope")).is_err());
        assert!(parse_seed(None).is_err());
    }

    #[test]
    fn kind_all_is_every_verified_subject() {
        let subjects = parse_subjects(Some("all")).unwrap();
        assert_eq!(subjects, Subject::verified().to_vec());
        assert!(!subjects.contains(&Subject::RacyTatas));
    }

    #[test]
    fn kind_parses_names_case_insensitively() {
        assert_eq!(
            parse_subjects(Some("hbo_gt_sd")).unwrap(),
            vec![Subject::Kind(hbo_locks::LockKind::HboGtSd)]
        );
        assert_eq!(
            parse_subjects(Some("ticket")).unwrap(),
            vec![Subject::Kind(hbo_locks::LockKind::Ticket)]
        );
        assert_eq!(
            parse_subjects(Some("cna")).unwrap(),
            vec![Subject::Kind(hbo_locks::LockKind::Cna)]
        );
        assert_eq!(
            parse_subjects(Some("racy_tatas")).unwrap(),
            vec![Subject::RacyTatas]
        );
        assert_eq!(
            parse_subjects(Some("LEAKY_HBO_GT")).unwrap(),
            vec![Subject::LeakyHboGt]
        );
        assert_eq!(
            parse_subjects(Some("splice_lost_cna")).unwrap(),
            vec![Subject::SpliceLostCna]
        );
    }

    #[test]
    fn kind_rejects_unknown_with_the_menu() {
        let err = parse_subjects(Some("spinlock9000")).unwrap_err();
        assert!(err.contains("spinlock9000"), "{err}");
        assert!(err.contains("TATAS"), "{err}");
        assert!(parse_subjects(None).is_err());
    }
}

//! `nuca-mcheck`: an exhaustive interleaving model checker for the
//! simulator lock state machines.
//!
//! Every algorithm in `nucasim-locks` is a resumable state machine
//! ([`nucasim_locks::LockSession`]) that communicates with the world only
//! through [`nucasim::Command`] values — exactly the shape a systematic
//! concurrency checker needs. This crate drives those sessions directly
//! over a tiny **sequentially consistent** flat word store (no `nucasim`
//! engine, no timing: `Delay` is an immediate no-op, so exploration covers
//! every ordering a delay could otherwise hide) and enumerates thread
//! interleavings with a stateless, replay-based depth-first search.
//!
//! Checked properties:
//!
//! 1. **Mutual exclusion** — never two sessions past `Acquired` without an
//!    intervening `Released`.
//! 2. **Deadlock freedom** — from every reachable state, some thread can
//!    step.
//! 3. **Eventual acquisition under fair schedules** — round-robin
//!    scheduling completes every thread's acquisitions within a budget.
//! 4. **GT-slot hygiene** — for HBO_GT / HBO_GT_SD, every node's
//!    `is_spinning` slot is cleared once its last contender releases
//!    (checked on every terminal state).
//!
//! On a violation the offending schedule is shrunk to a minimal prefix
//! (greedy delta debugging over schedule entries) and replayed through the
//! `nucasim` trace layer so the counterexample prints as a readable event
//! log ([`render::render`]).
//!
//! The deliberate gap vs. `nucasim`: the simulator models NUCA *timing*
//! (latencies, backoff, caches) on one schedule per seed; the checker
//! models *all schedules* on a timeless SC memory. Bugs that only
//! manifest under weak memory orderings are out of scope for both.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod dfs;
pub mod fair;
pub mod random;
pub mod render;
pub mod world;

use std::fmt;

use hbo_locks::LockKind;

pub use dfs::{explore, Counterexample, ExploreStats};
pub use fair::{check_fair, FairReport};
pub use random::{check_random, RandomOutcome};
pub use world::{Status, World};

/// What the checker is checking: a registered algorithm from the
/// [`hbo_locks::LockCatalog`], or a deliberately broken mutant from
/// [`nucasim_locks::mutants`] (used to validate the checker itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subject {
    /// A registered [`LockKind`] algorithm (every catalog entry has a
    /// simulator state machine, so every one is checkable).
    Kind(LockKind),
    /// Mutant: TATAS with the test-and-set race reintroduced.
    RacyTatas,
    /// Mutant: HBO_GT that never clears its `is_spinning` slot on a
    /// successful remote acquire.
    LeakyHboGt,
    /// Mutant: CNA whose splice path drops the link from the secondary
    /// queue back to the main queue.
    SpliceLostCna,
}

impl Subject {
    /// The three seeded mutants, which the checker must catch.
    pub const MUTANTS: [Subject; 3] = [
        Subject::RacyTatas,
        Subject::LeakyHboGt,
        Subject::SpliceLostCna,
    ];

    /// The subjects `--kind all` verifies: every kind registered in the
    /// [`hbo_locks::LockCatalog`], in registration order. Derived, not
    /// listed — registering a lock automatically extends the checker's
    /// coverage. Mutants are excluded — they exist to *fail*.
    pub fn verified() -> &'static [Subject] {
        static VERIFIED: std::sync::OnceLock<Vec<Subject>> = std::sync::OnceLock::new();
        VERIFIED.get_or_init(|| {
            hbo_locks::LockCatalog::kinds()
                .iter()
                .map(|&k| Subject::Kind(k))
                .collect()
        })
    }

    /// Canonical (CLI) name.
    pub fn name(self) -> &'static str {
        match self {
            Subject::Kind(k) => k.as_str(),
            Subject::RacyTatas => "RACY_TATAS",
            Subject::LeakyHboGt => "LEAKY_HBO_GT",
            Subject::SpliceLostCna => "SPLICE_LOST_CNA",
        }
    }
}

/// One checker run's parameters.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// The lock under test.
    pub subject: Subject,
    /// Contending threads, spread round-robin over the two NUCA nodes.
    pub cpus: usize,
    /// Acquire/release iterations per thread.
    pub iters: u32,
    /// Safety-net schedule-length bound; paths longer than this count as
    /// `truncated` in [`ExploreStats`] (a non-exhaustive run). DFS path
    /// length is bounded by the longest simple chain of distinct states,
    /// so the default is never hit at checker scale.
    pub depth: usize,
    /// CHESS-style preemption bound: switching away from a thread that
    /// could still step costs one unit of budget; `None` explores all
    /// interleavings. With a bound set, the dedup key includes the spent
    /// budget (a state reached with fewer preemptions allows strictly more
    /// futures, so plain state dedup would be unsound).
    pub preempt: Option<u32>,
    /// Step budget for the fair-schedule liveness check.
    pub fair_budget: u64,
}

impl CheckConfig {
    /// Defaults: 2 CPUs (one per node), 2 iterations, effectively
    /// unbounded depth and preemptions.
    pub fn new(subject: Subject) -> CheckConfig {
        CheckConfig {
            subject,
            cpus: 2,
            iters: 2,
            depth: 100_000,
            preempt: None,
            fair_budget: 200_000,
        }
    }
}

/// A property violation found by the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// Two threads hold the lock at once.
    MutualExclusion {
        /// Thread already holding the lock.
        first: usize,
        /// Thread that acquired anyway.
        second: usize,
    },
    /// No thread can step, but not all are done.
    Deadlock,
    /// A GT `is_spinning` slot is still set after every contender
    /// finished.
    SlotLeak {
        /// Flat-store word index of the leaked slot.
        slot: usize,
        /// The stale value it still holds.
        value: u64,
    },
    /// A thread failed to complete its acquisitions under a fair
    /// (round-robin) schedule within the budget.
    Unfair {
        /// The starved thread.
        thread: usize,
    },
}

impl Violation {
    /// Stable short name, used to decide whether a shrunk schedule still
    /// reproduces "the same" violation (thread ids and slot values may
    /// legitimately differ after shrinking).
    pub fn kind_str(self) -> &'static str {
        match self {
            Violation::MutualExclusion { .. } => "mutual-exclusion",
            Violation::Deadlock => "deadlock",
            Violation::SlotLeak { .. } => "slot-leak",
            Violation::Unfair { .. } => "unfair",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Violation::MutualExclusion { first, second } => write!(
                f,
                "mutual exclusion violated: thread {first} and thread {second} \
                 hold the lock simultaneously"
            ),
            Violation::Deadlock => write!(f, "deadlock: no thread can make progress"),
            Violation::SlotLeak { slot, value } => write!(
                f,
                "GT-slot hygiene violated: is_spinning word {slot} still holds \
                 {value} after all contenders released"
            ),
            Violation::Unfair { thread } => write!(
                f,
                "starvation under a fair schedule: thread {thread} did not \
                 finish its acquisitions within the fairness budget"
            ),
        }
    }
}

/// Everything one `check` run produced.
#[derive(Debug)]
pub struct CheckReport {
    /// The subject checked.
    pub subject: Subject,
    /// Exhaustive-exploration statistics.
    pub stats: ExploreStats,
    /// Fair-schedule statistics (only run when exploration found nothing).
    pub fair: Option<FairReport>,
    /// The shrunk counterexample, if any property failed.
    pub counterexample: Option<Counterexample>,
}

impl CheckReport {
    /// Did every property hold?
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Runs the full check for one subject: exhaustive DFS over interleavings
/// (properties 1, 2, 4), then — if clean — the fair-schedule liveness
/// check (property 3).
pub fn check(cfg: &CheckConfig) -> CheckReport {
    let (stats, cex) = dfs::explore(cfg);
    if let Some(cex) = cex {
        return CheckReport {
            subject: cfg.subject,
            stats,
            fair: None,
            counterexample: Some(cex),
        };
    }
    match fair::check_fair(cfg) {
        Ok(fair) => CheckReport {
            subject: cfg.subject,
            stats,
            fair: Some(fair),
            counterexample: None,
        },
        Err(cex) => CheckReport {
            subject: cfg.subject,
            stats,
            fair: None,
            counterexample: Some(cex),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subject_names_are_unique() {
        let mut names: Vec<&str> = Subject::verified()
            .iter()
            .chain(Subject::MUTANTS.iter())
            .map(|s| s.name())
            .collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn verified_covers_the_whole_catalog() {
        // Registering a lock kind must automatically put it under the
        // checker's `--kind all` umbrella.
        assert!(Subject::verified().len() >= 13);
        assert_eq!(
            Subject::verified().len(),
            hbo_locks::LockCatalog::kinds().len()
        );
        for (s, &k) in Subject::verified()
            .iter()
            .zip(hbo_locks::LockCatalog::kinds())
        {
            assert_eq!(*s, Subject::Kind(k));
        }
    }

    #[test]
    fn violation_display_and_kind() {
        let v = Violation::MutualExclusion { first: 0, second: 1 };
        assert!(v.to_string().contains("mutual exclusion"));
        assert_eq!(v.kind_str(), "mutual-exclusion");
        assert_eq!(Violation::Deadlock.kind_str(), "deadlock");
    }
}

//! Property 3: eventual acquisition under fair schedules.
//!
//! Exhaustive DFS proves safety but says nothing about liveness — an
//! unfair scheduler may simply never run a waiting thread. The classic
//! fix is to check progress under *fair* schedules only. Here: strict
//! round-robin over enabled threads (the canonical fair scheduler),
//! started once from each thread offset. If the system fails to finish
//! every thread's acquisitions within [`CheckConfig::fair_budget`] steps,
//! some thread is starving — for these finite-state lock protocols, a
//! fair schedule that does not terminate is trapped in a livelock cycle,
//! which the budget (orders of magnitude above any terminating run)
//! converts into a detectable [`Violation::Unfair`].

use crate::dfs::Counterexample;
use crate::world::{Status, World};
use crate::{CheckConfig, Violation};

/// Statistics from a clean fair-schedule check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FairReport {
    /// Round-robin schedules run (one per starting thread).
    pub schedules: usize,
    /// Total steps across all of them.
    pub steps: u64,
}

/// Runs one round-robin schedule per starting offset. Returns the first
/// violation as an (unshrunk — round-robin schedules are already the
/// readable kind) counterexample.
///
/// # Errors
///
/// The counterexample for the first violated property, if any.
pub fn check_fair(cfg: &CheckConfig) -> Result<FairReport, Counterexample> {
    let n = cfg.cpus;
    let mut total_steps = 0u64;
    for start in 0..n {
        let mut world = World::new(cfg);
        let mut schedule = Vec::new();
        let mut cursor = start;
        loop {
            match world.status() {
                Status::Done => {
                    if let Some(v) = world.final_violation() {
                        return Err(Counterexample {
                            violation: v,
                            schedule,
                        });
                    }
                    break;
                }
                Status::Deadlock => {
                    return Err(Counterexample {
                        violation: Violation::Deadlock,
                        schedule,
                    });
                }
                Status::Running => {}
            }
            if schedule.len() as u64 >= cfg.fair_budget {
                // Budget blown: name the thread furthest behind.
                let thread = (0..n)
                    .min_by_key(|&t| world.acquires(t))
                    .expect("at least one thread");
                return Err(Counterexample {
                    violation: Violation::Unfair { thread },
                    schedule,
                });
            }
            // Round-robin: the enabled thread closest after the cursor.
            let t = (0..n)
                .map(|d| (cursor + d) % n)
                .find(|&t| world.enabled(t))
                .expect("running state has an enabled thread");
            schedule.push(t);
            if let Err(v) = world.step(t) {
                return Err(Counterexample {
                    violation: v,
                    schedule,
                });
            }
            cursor = (t + 1) % n;
        }
        total_steps += schedule.len() as u64;
    }
    Ok(FairReport {
        schedules: n,
        steps: total_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Subject;

    #[test]
    fn all_verified_subjects_terminate_fairly() {
        for &subject in Subject::verified() {
            let cfg = CheckConfig::new(subject);
            let report = check_fair(&cfg)
                .unwrap_or_else(|cex| panic!("{}: {} ({:?})", subject.name(), cex.violation, cex.schedule));
            assert_eq!(report.schedules, 2);
            assert!(report.steps > 0);
        }
    }

    #[test]
    fn leaky_mutant_fails_fairness_or_hygiene() {
        // With two iterations, the leaked slot gates the second acquire of
        // the node-1 thread: round-robin deadlocks (or surfaces the leak).
        let cfg = CheckConfig::new(Subject::LeakyHboGt);
        let cex = check_fair(&cfg).expect_err("mutant must fail");
        assert!(
            matches!(
                cex.violation,
                Violation::Deadlock | Violation::SlotLeak { .. } | Violation::Unfair { .. }
            ),
            "{}",
            cex.violation
        );
    }
}

//! `nuca-mcheck`: CLI for the lock-protocol model checker.
//!
//! ```bash
//! nuca-mcheck                            # exhaustive, all kinds, 2 CPUs
//! nuca-mcheck --kind hbo_gt --cpus 3     # one kind, three contenders
//! nuca-mcheck --kind racy_tatas          # mutant: exits 1 with a trace
//! nuca-mcheck --kind all --random 500 --seed 7   # sampled schedules
//! nuca-mcheck --kind all --bench-json mcheck.json
//! nuca-mcheck --list                     # subject inventory
//! ```
//!
//! Exit codes: 0 all properties hold, 1 a violation was found, 2 usage
//! error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use nuca_modelcheck::{check, check_random, cli, render, CheckConfig, Subject};

const USAGE: &str = "usage: nuca-mcheck [--kind K|all] [--cpus N] [--iters N] \
     [--depth N] [--preempt N] [--random N --seed S] [--bench-json PATH] [--list]";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut subjects: Vec<Subject> = Subject::verified().to_vec();
    let mut cpus = 2usize;
    let mut iters = 2u32;
    let mut depth = 100_000usize;
    let mut preempt: Option<u32> = None;
    let mut random: Option<u64> = None;
    let mut seed = 0u64;
    let mut bench_json: Option<PathBuf> = None;

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--kind" => match cli::parse_subjects(iter.next().as_deref()) {
                Ok(s) => subjects = s,
                Err(msg) => return usage_error(&msg),
            },
            "--cpus" => match cli::parse_count("--cpus", iter.next().as_deref()) {
                Ok(n) if n <= 8 => cpus = n as usize,
                Ok(n) => return usage_error(&format!("--cpus {n} is past the exhaustible range (max 8)")),
                Err(msg) => return usage_error(&msg),
            },
            "--iters" => match cli::parse_count("--iters", iter.next().as_deref()) {
                Ok(n) if n <= 16 => iters = n as u32,
                Ok(n) => return usage_error(&format!("--iters {n} is past the exhaustible range (max 16)")),
                Err(msg) => return usage_error(&msg),
            },
            "--depth" => match cli::parse_count("--depth", iter.next().as_deref()) {
                Ok(n) => depth = n as usize,
                Err(msg) => return usage_error(&msg),
            },
            "--preempt" => match cli::parse_count("--preempt", iter.next().as_deref()) {
                Ok(n) => preempt = Some(n as u32),
                Err(msg) => return usage_error(&msg),
            },
            "--random" => match cli::parse_count("--random", iter.next().as_deref()) {
                Ok(n) => random = Some(n),
                Err(msg) => return usage_error(&msg),
            },
            "--seed" => match cli::parse_seed(iter.next().as_deref()) {
                Ok(s) => seed = s,
                Err(msg) => return usage_error(&msg),
            },
            "--bench-json" => match iter.next() {
                Some(path) => bench_json = Some(PathBuf::from(path)),
                None => return usage_error("--bench-json requires a file path"),
            },
            "--list" => {
                let verified: Vec<&str> = Subject::verified().iter().map(|s| s.name()).collect();
                let mutants: Vec<&str> = Subject::MUTANTS.iter().map(|s| s.name()).collect();
                println!("verified subjects: {}", verified.join(", "));
                println!("mutants (must fail): {}", mutants.join(", "));
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                return usage_error(&format!("unrecognized argument `{other}`"));
            }
        }
    }

    let started = Instant::now();
    let mut total_states = 0u64;
    let mut total_transitions = 0u64;
    let mut failed = false;

    for subject in &subjects {
        let mut cfg = CheckConfig::new(*subject);
        cfg.cpus = cpus;
        cfg.iters = iters;
        cfg.depth = depth;
        cfg.preempt = preempt;

        if let Some(n) = random {
            let sub_started = Instant::now();
            let out = check_random(&cfg, n, seed);
            let ms = sub_started.elapsed().as_secs_f64() * 1e3;
            total_transitions += out.steps;
            match out.violation {
                None => println!(
                    "{:<13} cpus={cpus} iters={iters} random={n} seed={seed}: PASS  \
                     steps={} ({ms:.0} ms)",
                    subject.name(),
                    out.steps
                ),
                Some(cex) => {
                    println!(
                        "{:<13} cpus={cpus} iters={iters} random={n} seed={seed}: FAIL \
                         after {} schedules — {}",
                        subject.name(),
                        out.schedules,
                        cex.violation
                    );
                    print!("{}", render::render(&cfg, &cex));
                    failed = true;
                }
            }
            continue;
        }

        let sub_started = Instant::now();
        let report = check(&cfg);
        let ms = sub_started.elapsed().as_secs_f64() * 1e3;
        total_states += report.stats.distinct_states;
        total_transitions += report.stats.transitions;
        match &report.counterexample {
            None => {
                let exhaustive = if report.stats.truncated == 0 {
                    "exhaustive"
                } else {
                    "TRUNCATED"
                };
                let fair = report
                    .fair
                    .map_or(String::new(), |f| format!(" fair_steps={}", f.steps));
                println!(
                    "{:<13} cpus={cpus} iters={iters}: PASS  ({exhaustive}) \
                     states={} transitions={} max_depth={}{fair} ({ms:.0} ms)",
                    subject.name(),
                    report.stats.distinct_states,
                    report.stats.transitions,
                    report.stats.max_depth,
                );
            }
            Some(cex) => {
                println!(
                    "{:<13} cpus={cpus} iters={iters}: FAIL  {} \
                     (counterexample: {} steps, states explored: {})",
                    subject.name(),
                    cex.violation,
                    cex.schedule.len(),
                    report.stats.distinct_states,
                );
                print!("{}", render::render(&cfg, cex));
                failed = true;
            }
        }
    }

    let total = started.elapsed();
    let states_per_sec = total_states as f64 / total.as_secs_f64().max(1e-9);
    eprintln!(
        "[checked {} subject(s) in {total:.1?}: {total_states} states, \
         {total_transitions} transitions, {states_per_sec:.0} states/sec]",
        subjects.len()
    );

    if let Some(path) = bench_json {
        let json = format!(
            "{{\n  \"tool\": \"nuca-mcheck\",\n  \"cpus\": {cpus},\n  \"iters\": {iters},\n  \
             \"subjects\": {},\n  \"distinct_states\": {total_states},\n  \
             \"transitions\": {total_transitions},\n  \"wall_ms\": {:.1},\n  \
             \"states_per_sec\": {states_per_sec:.0}\n}}\n",
            subjects.len(),
            total.as_secs_f64() * 1e3,
        );
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(err) => {
                eprintln!("could not write bench JSON {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

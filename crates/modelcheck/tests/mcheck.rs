//! End-to-end checks for the model checker: every catalog-registered lock
//! passes exhaustively, all three seeded mutants are provably caught, and
//! random mode is byte-reproducible.

use nuca_modelcheck::dfs::replay_violation;
use nuca_modelcheck::{check, check_random, CheckConfig, Subject, Violation};

#[test]
fn every_verified_subject_passes_exhaustively_at_two_cpus() {
    for &subject in Subject::verified() {
        let cfg = CheckConfig::new(subject);
        let report = check(&cfg);
        assert!(
            report.passed(),
            "{}: {:?}",
            subject.name(),
            report.counterexample
        );
        assert_eq!(
            report.stats.truncated,
            0,
            "{}: search was depth-truncated, not exhaustive",
            subject.name()
        );
        let fair = report.fair.expect("clean check runs the fair pass");
        assert!(fair.steps > 0);
    }
}

#[test]
fn racy_tatas_mutant_is_caught_with_a_minimal_witness() {
    let cfg = CheckConfig::new(Subject::RacyTatas);
    let report = check(&cfg);
    let cex = report.counterexample.expect("mutant must be caught");
    assert!(matches!(cex.violation, Violation::MutualExclusion { .. }));
    // The shrinker is deterministic; the minimal race is read, read,
    // claim, claim. A regression here means either the search order or
    // ddmin changed.
    assert_eq!(cex.schedule.len(), 4, "{:?}", cex.schedule);
    // The shrunk schedule replays to the same violation kind with no
    // skipped entries.
    let (v, used) = replay_violation(&cfg, &cex.schedule).expect("replayable");
    assert_eq!(v.kind_str(), cex.violation.kind_str());
    assert_eq!(used, cex.schedule);
}

#[test]
fn leaky_hbo_gt_mutant_is_caught_with_a_stable_witness() {
    let cfg = CheckConfig::new(Subject::LeakyHboGt);
    let report = check(&cfg);
    let cex = report.counterexample.expect("mutant must be caught");
    // The unclear slot gates the leaker's own next acquire: the search
    // surfaces it as a deadlock (or, on other orders, a terminal slot
    // leak).
    assert!(
        matches!(cex.violation, Violation::Deadlock | Violation::SlotLeak { .. }),
        "{}",
        cex.violation
    );
    // Stable shrunk length: acquire/release twice on node 0, announce +
    // leak + release on node 1, then the blocked re-acquire.
    assert_eq!(cex.schedule.len(), 12, "{:?}", cex.schedule);
    let (v, used) = replay_violation(&cfg, &cex.schedule).expect("replayable");
    assert_eq!(v.kind_str(), cex.violation.kind_str());
    assert_eq!(used, cex.schedule);
}

#[test]
fn splice_lost_cna_mutant_is_caught_at_three_cpus() {
    // The splice bug needs a secondary queue to exist at splice time,
    // which takes two same-node contenders plus a remote one — it is
    // *unreachable* at two CPUs (one per node), so the CNA mutant is
    // checked one notch up. The lost link orphans the main queue: the
    // search surfaces it as a deadlock.
    let mut cfg = CheckConfig::new(Subject::SpliceLostCna);
    cfg.cpus = 3;
    let report = check(&cfg);
    let cex = report.counterexample.expect("mutant must be caught");
    assert!(
        matches!(cex.violation, Violation::Deadlock | Violation::Unfair { .. }),
        "{}",
        cex.violation
    );
    let (v, used) = replay_violation(&cfg, &cex.schedule).expect("replayable");
    assert_eq!(v.kind_str(), cex.violation.kind_str());
    assert_eq!(used, cex.schedule);
}

#[test]
fn splice_lost_cna_passes_vacuously_where_the_bug_is_unreachable() {
    // Documents the reachability boundary: at two CPUs there is never a
    // secondary queue, so the mutant is indistinguishable from real CNA —
    // which is why CI checks it at three CPUs.
    let report = check(&CheckConfig::new(Subject::SpliceLostCna));
    assert!(report.passed());
}

#[test]
fn exhaustive_and_random_agree_on_the_two_cpu_mutants() {
    // SpliceLostCna is excluded: its bug needs 3 CPUs (see above).
    for subject in [Subject::RacyTatas, Subject::LeakyHboGt] {
        let cfg = CheckConfig::new(subject);
        let out = check_random(&cfg, 256, 0xD1CE);
        assert!(
            !out.passed(),
            "{}: 256 random schedules missed the seeded bug",
            subject.name()
        );
    }
}

#[test]
fn random_mode_is_reproducible_per_seed() {
    let cfg = CheckConfig::new(Subject::Kind(hbo_locks::LockKind::HboGt));
    let a = check_random(&cfg, 40, 0xABCD);
    let b = check_random(&cfg, 40, 0xABCD);
    assert_eq!(a, b, "same seed must give an identical outcome");
    let c = check_random(&cfg, 40, 0xABCE);
    assert!(
        a.steps != c.steps || a.violation != c.violation || a.schedules != c.schedules,
        "different seeds should explore differently"
    );
}

#[test]
fn three_cpus_stays_exhaustive_for_the_flat_locks() {
    // A spot check that the state space stays tractable one notch up.
    for subject in [
        Subject::Kind(hbo_locks::LockKind::Tatas),
        Subject::Kind(hbo_locks::LockKind::Ticket),
    ] {
        let mut cfg = CheckConfig::new(subject);
        cfg.cpus = 3;
        let report = check(&cfg);
        assert!(report.passed(), "{:?}", report.counterexample);
        assert_eq!(report.stats.truncated, 0);
    }
}

//! A minimal, API-compatible stand-in for the subset of the `criterion`
//! benchmark harness this workspace uses.
//!
//! The build environment has no access to crates.io, so the real
//! `criterion` cannot be vendored. This shim keeps the `benches/`
//! directory compiling and producing useful wall-clock numbers: each
//! benchmark is warmed up once, then timed for up to `measurement_time`
//! (or `sample_size` iterations, whichever bound is hit first), and the
//! mean per-iteration time is printed in criterion's familiar
//! `name ... time: [..]` shape.
//!
//! Statistical machinery (outlier detection, regressions, HTML reports)
//! is intentionally absent — swap the workspace `criterion` dependency
//! back to the registry version to get it.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&id.to_string(), 20, Duration::from_secs(2), &mut f);
    }
}

/// A named set of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Records the per-sample element throughput (accepted, unused).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Caps how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget (accepted; the shim warms up exactly once).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.measurement_time, &mut f);
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier of one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the parameter's `Display` form.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Display, p: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Declared element/byte throughput of one benchmark sample.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per sample.
    Elements(u64),
    /// Bytes processed per sample.
    Bytes(u64),
}

/// Timer handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    /// Times `f` repeatedly until the sample or time budget runs out.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // One untimed warm-up run.
        std::hint::black_box(f());
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

fn run_one(label: &str, max_samples: usize, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget,
        max_samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} time: [no samples]");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<40} time: [{min:?} {mean:?} {max:?}] ({} samples)",
        b.samples.len()
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() { $( $group(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran >= 1);
    }
}

//! Randomized invariant tests of core data structures.
//!
//! These used to be `proptest` properties; the build environment has no
//! crates.io access, so they are driven by the repo's own deterministic
//! [`SplitMix64`] generator instead: each property samples a few hundred
//! pseudo-random cases from a fixed seed, which keeps the coverage of the
//! original properties while staying reproducible and dependency-free.

use hbo_repro::hbo_locks::{Backoff, BackoffConfig, LevelBackoff, NucaLock};
use hbo_repro::nuca_topology::{CpuId, NodeId, Topology};
use hbo_repro::nucasim::{Addr, Command, CpuCtx, Machine, MachineConfig, Program, SplitMix64};

/// Draws a value in `[lo, hi)`.
fn draw(rng: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    lo + rng.next_below(hi - lo)
}

/// Backoff sequences are monotone non-decreasing and capped.
#[test]
fn backoff_monotone_and_capped() {
    let mut rng = SplitMix64::new(0xBAC0FF);
    for _ in 0..200 {
        let base = draw(&mut rng, 1, 1_000) as u32;
        let factor = draw(&mut rng, 1, 8) as u32;
        let cap = base.saturating_add(draw(&mut rng, 0, 100_000) as u32);
        let cfg = BackoffConfig::new(base, factor, cap);
        let mut b = Backoff::new(&cfg);
        let mut prev = 0u32;
        for _ in 0..64 {
            let d = b.advance();
            assert!(d >= prev || d == cap, "base={base} factor={factor} cap={cap}");
            assert!(d <= cap);
            assert!(d >= base.min(cap));
            prev = d;
        }
        // The sequence reaches the cap within log2(cap/base)+1 steps when
        // factor >= 2.
        if factor >= 2 {
            assert_eq!(b.advance(), cap);
        }
    }
}

/// Round-robin bindings are valid, distinct CPUs that balance nodes.
#[test]
fn round_robin_binding_is_valid() {
    let mut rng = SplitMix64::new(0xB1D0);
    for _ in 0..200 {
        let nodes = draw(&mut rng, 1, 6) as usize;
        let per_node = draw(&mut rng, 1, 10) as usize;
        let topo = Topology::symmetric(nodes, per_node);
        let threads = (draw(&mut rng, 0, topo.num_cpus() as u64 + 1) as usize).max(1);
        let binding = topo.round_robin_binding(threads);
        assert_eq!(binding.len(), threads);
        let mut seen = std::collections::HashSet::new();
        for cpu in &binding {
            assert!(cpu.index() < topo.num_cpus());
            assert!(seen.insert(*cpu), "duplicate CPU handed out");
        }
        // Node balance: counts differ by at most one.
        let mut counts = vec![0usize; nodes];
        for cpu in &binding {
            counts[topo.node_of(*cpu).index()] += 1;
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        let min = counts.iter().min().copied().unwrap_or(0);
        assert!(max - min <= 1, "unbalanced: {counts:?}");
    }
}

/// Communication distance is a symmetric pseudo-metric respecting the
/// hierarchy.
#[test]
fn topology_distance_symmetric() {
    let mut rng = SplitMix64::new(0xD157);
    for _ in 0..30 {
        let arity1 = draw(&mut rng, 1, 4) as usize;
        let arity2 = draw(&mut rng, 1, 4) as usize;
        let n = draw(&mut rng, 2, 4) as usize;
        let mut b = Topology::builder();
        for _ in 0..n {
            b = b.hierarchical_node(&[arity1, arity2]);
        }
        let topo = b.build().expect("valid shape");
        for a in topo.cpus() {
            assert_eq!(topo.distance(a, a), 0);
            for c in topo.cpus() {
                assert_eq!(topo.distance(a, c), topo.distance(c, a));
                if a != c {
                    assert!(topo.distance(a, c) >= 1);
                }
                assert_eq!(
                    topo.distance(a, c) > topo.extra_levels() + 1,
                    !topo.same_node(a, c)
                );
            }
        }
    }
}

/// Addr encoding is a bijection away from the null value.
#[test]
fn addr_encode_decode_roundtrip() {
    let mut rng = SplitMix64::new(0xADD8);
    for _ in 0..500 {
        let v = draw(&mut rng, 0, 1_000_000);
        match Addr::decode(v) {
            None => assert_eq!(v, 0),
            Some(a) => assert_eq!(a.encode(), v),
        }
    }
}

/// SplitMix64 bounded draws stay in range and cover small ranges.
#[test]
fn splitmix_bounds() {
    let mut seeds = SplitMix64::new(0x5EED);
    for _ in 0..50 {
        let mut rng = SplitMix64::new(seeds.next_u64());
        let bound = 1 + seeds.next_below(499);
        let mut hit_low_half = false;
        for _ in 0..200 {
            let v = rng.next_below(bound);
            assert!(v < bound);
            hit_low_half |= v < bound.div_ceil(2);
        }
        assert!(hit_low_half, "draws never reached the lower half of [0,{bound})");
    }
}

/// Per-distance backoff tables are monotone in distance.
#[test]
fn level_backoff_monotone() {
    let mut rng = SplitMix64::new(0x1E7E1);
    for _ in 0..200 {
        let levels = draw(&mut rng, 1, 6) as usize;
        let base = draw(&mut rng, 1, 500) as u32;
        let scale = draw(&mut rng, 1, 6) as u32;
        let lb = LevelBackoff::geometric(levels, base, base * 8, scale);
        for d in 1..levels {
            assert!(lb.config(d + 1).base >= lb.config(d).base);
            assert!(lb.config(d + 1).cap >= lb.config(d).cap);
        }
        // Clamping beyond the table.
        assert_eq!(lb.config(levels + 5).base, lb.config(levels).base);
    }
}

/// The simulator conserves atomic increments for arbitrary small machine
/// shapes and seeds.
#[test]
fn sim_fetch_add_conserves() {
    struct Incr {
        addr: Addr,
        left: u32,
    }
    impl Program for Incr {
        fn resume(&mut self, _c: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
            if self.left == 0 {
                return Command::Done;
            }
            self.left -= 1;
            Command::FetchAdd {
                addr: self.addr,
                delta: 1,
            }
        }
    }
    let mut rng = SplitMix64::new(0xC0457);
    for _ in 0..25 {
        let nodes = draw(&mut rng, 1, 4) as usize;
        let per_node = draw(&mut rng, 1, 4) as usize;
        let seed = rng.next_u64();
        let incrs = draw(&mut rng, 1, 40) as u32;
        let mut m = Machine::new(MachineConfig::wildfire(nodes, per_node).with_seed(seed));
        let a = m.mem_mut().alloc(NodeId(0));
        let cpus = nodes * per_node;
        for c in 0..cpus {
            m.add_program(CpuId(c), Box::new(Incr { addr: a, left: incrs }));
        }
        let status = m.run(u64::MAX / 4);
        assert!(status.finished_all);
        assert_eq!(m.mem().peek(a), u64::from(incrs) * cpus as u64);
    }
}

/// Real locks: mutual exclusion holds for arbitrary small thread/iter
/// combinations (bounded for test time).
#[test]
fn real_lock_exclusion() {
    let mut rng = SplitMix64::new(0x10CC);
    for _ in 0..12 {
        let all = hbo_locks::LockCatalog::kinds();
        let kind = all[draw(&mut rng, 0, all.len() as u64) as usize];
        let threads = draw(&mut rng, 2, 5) as usize;
        let iters = draw(&mut rng, 1, 300);
        let lock = std::sync::Arc::new(kind.instantiate(2));
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..threads {
                let lock = std::sync::Arc::clone(&lock);
                let counter = std::sync::Arc::clone(&counter);
                s.spawn(move || {
                    let node = NodeId(i % 2);
                    for _ in 0..iters {
                        let t = lock.acquire(node);
                        let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                        counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                        lock.release(t);
                    }
                });
            }
        });
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            iters * threads as u64
        );
    }
}

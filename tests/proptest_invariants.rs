//! Property-based tests of core data structures and invariants.

use proptest::prelude::*;

use hbo_repro::hbo_locks::{Backoff, BackoffConfig, LevelBackoff, LockKind, NucaLock};
use hbo_repro::nuca_topology::{CpuId, NodeId, Topology};
use hbo_repro::nucasim::{Addr, Machine, MachineConfig, SplitMix64};

proptest! {
    /// Backoff sequences are monotone non-decreasing and capped.
    #[test]
    fn backoff_monotone_and_capped(base in 1u32..1_000, factor in 1u32..8, extra in 0u32..100_000) {
        let cap = base.saturating_add(extra);
        let cfg = BackoffConfig::new(base, factor, cap);
        let mut b = Backoff::new(&cfg);
        let mut prev = 0u32;
        for _ in 0..64 {
            let d = b.advance();
            prop_assert!(d >= prev || d == cap);
            prop_assert!(d <= cap);
            prop_assert!(d >= base.min(cap));
            prev = d;
        }
        // The sequence reaches the cap within log2(cap/base)+1 steps when
        // factor >= 2.
        if factor >= 2 {
            prop_assert_eq!(b.advance(), cap);
        }
    }

    /// Round-robin bindings are valid, distinct CPUs that balance nodes.
    #[test]
    fn round_robin_binding_is_valid(nodes in 1usize..6, per_node in 1usize..10, frac in 0.0f64..=1.0) {
        let topo = Topology::symmetric(nodes, per_node);
        let threads = ((topo.num_cpus() as f64 * frac) as usize).max(1);
        let binding = topo.round_robin_binding(threads);
        prop_assert_eq!(binding.len(), threads);
        let mut seen = std::collections::HashSet::new();
        for cpu in &binding {
            prop_assert!(cpu.index() < topo.num_cpus());
            prop_assert!(seen.insert(*cpu), "duplicate CPU handed out");
        }
        // Node balance: counts differ by at most ceil(threads/nodes).
        let mut counts = vec![0usize; nodes];
        for cpu in &binding {
            counts[topo.node_of(*cpu).index()] += 1;
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        let min = counts.iter().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "unbalanced: {counts:?}");
    }

    /// Communication distance is a symmetric pseudo-metric respecting the
    /// hierarchy.
    #[test]
    fn topology_distance_symmetric(arity1 in 1usize..4, arity2 in 1usize..4, n in 2usize..4) {
        let mut b = Topology::builder();
        for _ in 0..n {
            b = b.hierarchical_node(&[arity1, arity2]);
        }
        let topo = b.build().expect("valid shape");
        for a in topo.cpus() {
            prop_assert_eq!(topo.distance(a, a), 0);
            for c in topo.cpus() {
                prop_assert_eq!(topo.distance(a, c), topo.distance(c, a));
                if a != c {
                    prop_assert!(topo.distance(a, c) >= 1);
                }
                prop_assert_eq!(
                    topo.distance(a, c) > topo.extra_levels() + 1,
                    !topo.same_node(a, c)
                );
            }
        }
    }

    /// Addr encoding is a bijection away from the null value.
    #[test]
    fn addr_encode_decode_roundtrip(v in 0u64..1_000_000) {
        match Addr::decode(v) {
            None => prop_assert_eq!(v, 0),
            Some(a) => prop_assert_eq!(a.encode(), v),
        }
    }

    /// SplitMix64 bounded draws stay in range and cover small ranges.
    #[test]
    fn splitmix_bounds(seed in any::<u64>(), bound in 1u64..500) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..200 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Per-distance backoff tables are monotone in distance.
    #[test]
    fn level_backoff_monotone(levels in 1usize..6, base in 1u32..500, scale in 1u32..6) {
        let lb = LevelBackoff::geometric(levels, base, base * 8, scale.max(1));
        for d in 1..levels {
            prop_assert!(lb.config(d + 1).base >= lb.config(d).base);
            prop_assert!(lb.config(d + 1).cap >= lb.config(d).cap);
        }
        // Clamping beyond the table.
        prop_assert_eq!(lb.config(levels + 5).base, lb.config(levels).base);
    }

    /// The simulator conserves atomic increments for arbitrary small
    /// machine shapes and seeds.
    #[test]
    fn sim_fetch_add_conserves(nodes in 1usize..4, per_node in 1usize..4, seed in any::<u64>(), incrs in 1u32..40) {
        use hbo_repro::nucasim::{Command, CpuCtx, Program};
        struct Incr { addr: Addr, left: u32 }
        impl Program for Incr {
            fn resume(&mut self, _c: &mut CpuCtx<'_>, _l: Option<u64>) -> Command {
                if self.left == 0 { return Command::Done; }
                self.left -= 1;
                Command::FetchAdd { addr: self.addr, delta: 1 }
            }
        }
        let mut m = Machine::new(MachineConfig::wildfire(nodes, per_node).with_seed(seed));
        let a = m.mem_mut().alloc(NodeId(0));
        let cpus = nodes * per_node;
        for c in 0..cpus {
            m.add_program(CpuId(c), Box::new(Incr { addr: a, left: incrs }));
        }
        let r = m.run(u64::MAX / 4);
        prop_assert!(r.finished_all);
        prop_assert_eq!(r.final_value(a), u64::from(incrs) * cpus as u64);
    }

    /// Real locks: mutual exclusion holds for arbitrary small thread/iter
    /// combinations (bounded for test time).
    #[test]
    fn real_lock_exclusion(kind_idx in 0usize..8, threads in 2usize..5, iters in 1u64..300) {
        let kind = LockKind::ALL[kind_idx];
        let lock = std::sync::Arc::new(kind.instantiate(2));
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..threads {
                let lock = std::sync::Arc::clone(&lock);
                let counter = std::sync::Arc::clone(&counter);
                s.spawn(move || {
                    let node = NodeId(i % 2);
                    for _ in 0..iters {
                        let t = lock.acquire(node);
                        let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                        counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                        lock.release(t);
                    }
                });
            }
        });
        prop_assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            iters * threads as u64
        );
    }
}

//! Integration tests spanning the simulator stack: topology → machine →
//! lock state machines → workloads.

use hbo_repro::hbo_locks::LockKind;
use hbo_repro::nuca_workloads::apps::{app_by_name, run_app, AppRunConfig};
use hbo_repro::nuca_workloads::modern::{run_modern, ModernConfig};
use hbo_repro::nuca_workloads::traditional::{run_traditional, TraditionalConfig};
use hbo_repro::nuca_workloads::uncontested::run_uncontested;
use hbo_repro::nucasim::{MachineConfig, PreemptionConfig};
use hbo_repro::nucasim_locks::SimLockParams;

fn modern(kind: LockKind, cw: u32) -> hbo_repro::nuca_workloads::MicroReport {
    run_modern(&ModernConfig {
        kind,
        machine: MachineConfig::wildfire(2, 4),
        threads: 8,
        iterations: 25,
        critical_work: cw,
        private_work: 4_000,
        ..ModernConfig::default()
    })
}

#[test]
fn headline_claim_nuca_beats_others_at_high_contention() {
    // Paper §1: "more than twice as fast for contended locks" (vs queue
    // locks) at the highest contention level of the new microbenchmark.
    let hbo = modern(LockKind::HboGt, 2100);
    let mcs = modern(LockKind::Mcs, 2100);
    assert!(
        mcs.ns_per_iteration / hbo.ns_per_iteration > 2.0,
        "HBO_GT {:.0} vs MCS {:.0} — expected > 2x",
        hbo.ns_per_iteration,
        mcs.ns_per_iteration
    );
}

#[test]
fn uncontested_claim_hbo_adds_no_overhead() {
    // Paper §4.1: "at low contention ... the algorithm should not add any
    // overhead" relative to the simplest locks.
    let machine = MachineConfig::wildfire(2, 2);
    let params = SimLockParams::default();
    let tatas = run_uncontested(LockKind::Tatas, &machine, &params);
    for kind in [LockKind::Hbo, LockKind::HboGt, LockKind::HboGtSd] {
        let r = run_uncontested(kind, &machine, &params);
        assert!(
            r.same_processor_ns <= tatas.same_processor_ns + 60,
            "{kind}: {} vs TATAS {}",
            r.same_processor_ns,
            tatas.same_processor_ns
        );
    }
    // Queue locks do add overhead (the paper's motivation for HBO).
    let mcs = run_uncontested(LockKind::Mcs, &machine, &params);
    assert!(mcs.same_processor_ns > tatas.same_processor_ns);
}

#[test]
fn traffic_claim_nuca_cuts_global_transactions() {
    // Paper abstract: global traffic reduced severalfold for contended
    // locks.
    let exp = modern(LockKind::TatasExp, 1500);
    let hbo = modern(LockKind::HboGt, 1500);
    assert!(
        (hbo.traffic.global as f64) < 0.7 * exp.traffic.global as f64,
        "HBO_GT global {} vs TATAS_EXP {}",
        hbo.traffic.global,
        exp.traffic.global
    );
}

#[test]
fn queue_locks_collapse_under_preemption() {
    // Paper Table 4: queue locks are "practically unusable" when the OS
    // preempts threads; backoff locks shrug.
    let ray = app_by_name("Raytrace").expect("studied app");
    let run = |kind: LockKind| {
        run_app(
            &ray,
            &AppRunConfig {
                kind,
                // Dense disturbance: the smoke-scale run is far shorter
                // than a real multiprogrammed quantum cycle, so the gaps
                // shrink proportionally.
                machine: MachineConfig::wildfire(2, 4).with_preemption(PreemptionConfig {
                    mean_gap: 120_000,
                    quantum: 300_000,
                }),
                threads: 8,
                scale: 0.004,
                cycle_limit: 3_000_000_000,
                ..AppRunConfig::default()
            },
        )
    };
    let mcs = run(LockKind::Mcs);
    let hbo = run(LockKind::HboGtSd);
    assert!(hbo.finished, "HBO_GT_SD must survive preemption");
    let ratio = mcs.seconds / hbo.seconds;
    assert!(
        !mcs.finished || ratio > 3.0,
        "MCS {:.3}s (finished={}) vs HBO_GT_SD {:.3}s",
        mcs.seconds,
        mcs.finished,
        hbo.seconds
    );
}

#[test]
fn traditional_and_modern_agree_on_lock_ordering() {
    // Both microbenchmarks must rank the NUCA locks at or below the queue
    // locks' iteration time under contention.
    let trad_mcs = run_traditional(&TraditionalConfig {
        kind: LockKind::Mcs,
        machine: MachineConfig::wildfire(2, 4),
        threads: 8,
        iterations: 40,
        ..TraditionalConfig::default()
    });
    let trad_hbo = run_traditional(&TraditionalConfig {
        kind: LockKind::HboGtSd,
        machine: MachineConfig::wildfire(2, 4),
        threads: 8,
        iterations: 40,
        ..TraditionalConfig::default()
    });
    assert!(trad_hbo.ns_per_iteration < trad_mcs.ns_per_iteration);
    let mod_mcs = modern(LockKind::Mcs, 1000);
    let mod_hbo = modern(LockKind::HboGtSd, 1000);
    assert!(mod_hbo.ns_per_iteration < mod_mcs.ns_per_iteration);
}

#[test]
fn simulation_is_reproducible_end_to_end() {
    let a = modern(LockKind::HboGtSd, 900);
    let b = modern(LockKind::HboGtSd, 900);
    assert_eq!(a.elapsed_ns, b.elapsed_ns);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.handoff_ratio, b.handoff_ratio);
}

#[test]
fn different_seeds_change_timings_but_not_counts() {
    let mut cfg = ModernConfig {
        kind: LockKind::TatasExp,
        machine: MachineConfig::wildfire(2, 4),
        threads: 8,
        iterations: 25,
        critical_work: 500,
        ..ModernConfig::default()
    };
    let a = run_modern(&cfg);
    cfg.machine = cfg.machine.with_seed(12345);
    let b = run_modern(&cfg);
    assert_eq!(a.total_acquires, b.total_acquires);
    assert_ne!(
        a.elapsed_ns, b.elapsed_ns,
        "different seeds should perturb timing"
    );
}

#[test]
fn all_studied_apps_complete_with_all_locks() {
    for app in hbo_repro::nuca_workloads::apps::studied_apps() {
        for kind in [LockKind::TatasExp, LockKind::Clh, LockKind::HboGtSd] {
            let r = run_app(
                &app,
                &AppRunConfig {
                    kind,
                    machine: MachineConfig::wildfire(2, 4),
                    threads: 8,
                    scale: 0.002,
                    ..AppRunConfig::default()
                },
            );
            assert!(r.finished, "{} with {kind} stuck", app.name);
            assert!(r.acquires > 0);
        }
    }
}

#[test]
fn uma_machine_neutralizes_nuca_advantage() {
    // On a single-node E6000 there are no remote nodes: HBO and TATAS_EXP
    // behave alike (within noise), confirming the mechanism is NUCA
    // locality and not something else.
    let run = |kind: LockKind| {
        run_modern(&ModernConfig {
            kind,
            machine: MachineConfig::e6000(8),
            threads: 8,
            iterations: 25,
            critical_work: 1000,
            private_work: 4_000,
            ..ModernConfig::default()
        })
    };
    let hbo = run(LockKind::Hbo);
    let exp = run(LockKind::TatasExp);
    let ratio = exp.ns_per_iteration / hbo.ns_per_iteration;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "UMA ratio {ratio} should be near 1"
    );
}

//! End-to-end checks that each experiment artifact regenerates and shows
//! the paper's qualitative result at smoke-test scale.

use nuca_experiments::{run_experiment, Scale, EXPERIMENTS, EXTENSIONS};

#[test]
fn every_artifact_regenerates() {
    for id in EXPERIMENTS.iter().chain(EXTENSIONS.iter()) {
        let reports = run_experiment(id, Scale::Fast).expect("known id");
        assert!(!reports.is_empty(), "{id}: no report produced");
        for r in &reports {
            assert!(r.rows() > 0, "{id}: empty table");
            // Render and TSV serialization never panic and carry data.
            assert!(r.render().contains(r.id()));
            assert!(r.to_tsv().lines().count() > 1);
        }
    }
}

#[test]
fn table1_hbo_matches_simplest_locks() {
    let r = &run_experiment("table1", Scale::Fast).unwrap()[0];
    let ns = |k: &str, col: usize| -> u64 {
        r.row_by_key(k).unwrap()[col]
            .trim_end_matches(" ns")
            .parse()
            .unwrap()
    };
    // Same-processor: HBO within a whisker of TATAS; queue locks above.
    assert!(ns("HBO", 1).abs_diff(ns("TATAS", 1)) < 80);
    assert!(ns("MCS", 1) > ns("TATAS", 1));
    assert!(ns("CLH", 1) > ns("TATAS", 1));
    // RH's remote-node acquisition is the most expensive, like the paper.
    assert!(ns("RH", 3) > ns("HBO", 3));
}

#[test]
fn table2_nuca_locks_cut_global_traffic() {
    let r = &run_experiment("table2", Scale::Fast).unwrap()[0];
    let global = |k: &str| -> f64 { r.row_by_key(k).unwrap()[2].parse().unwrap() };
    for k in ["RH", "HBO", "HBO_GT", "HBO_GT_SD"] {
        assert!(
            global(k) < global("MCS"),
            "{k} {} vs MCS {}",
            global(k),
            global("MCS")
        );
        assert!(global(k) < 1.0, "{k} must beat the TATAS_EXP baseline");
    }
}

#[test]
fn table4_queue_locks_collapse_only_when_preempted() {
    let r = &run_experiment("table4", Scale::Fast).unwrap()[0];
    let cell = |k: &str, col: usize| r.row_by_key(k).unwrap()[col].clone();
    let parse = |s: &str| -> Option<f64> { s.parse().ok() };
    // 28-CPU column: everyone finishes.
    for k in ["MCS", "CLH", "HBO_GT_SD"] {
        assert!(
            parse(&cell(k, 2)).is_some(),
            "{k} should finish at 28 CPUs: {}",
            cell(k, 2)
        );
    }
    // Preempted column: the HBO family finishes; queue locks are far
    // slower or time out entirely.
    let hbo = parse(&cell("HBO_GT_SD", 3)).expect("HBO_GT_SD survives preemption");
    for k in ["MCS", "CLH"] {
        match parse(&cell(k, 3)) {
            None => {} // "> N s": timed out, the paper's exact outcome
            Some(secs) => assert!(
                secs > 3.0 * hbo,
                "{k} {secs}s vs HBO_GT_SD {hbo}s under preemption"
            ),
        }
    }
}

#[test]
fn fig10_small_anger_limits_cost_throughput() {
    let r = &run_experiment("fig10", Scale::Fast).unwrap()[0];
    let sd = r.row_by_key("HBO_GT_SD").unwrap();
    let first: f64 = sd[1].parse().unwrap();
    let last: f64 = sd.last().unwrap().parse().unwrap();
    assert!(
        first > last,
        "limit=2 ({first}) should be slower than limit=128 ({last})"
    );
}

#[test]
fn nuca_ratio_extension_shows_growing_advantage() {
    let r = &run_experiment("nuca_ratio", Scale::Fast).unwrap()[0];
    let first: f64 = r.cell(0, 3).unwrap().parse().unwrap(); // UMA
    let last: f64 = r.cell(r.rows() - 1, 3).unwrap().parse().unwrap(); // NUMA-Q
    assert!(last > first, "MCS/HBO_GT ratio must grow with NUCA ratio");
}

#[test]
fn unknown_artifact_rejected() {
    assert!(run_experiment("table9", Scale::Fast).is_err());
}

//! Integration tests of the real-atomics lock library: every algorithm
//! must satisfy the `NucaLock` contract under genuine multi-threaded
//! stress.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hbo_repro::hbo_locks::{
    GtContext, HboGtSdConfig, HboGtSdLock, Instrumented, LockKind, NucaLock, NucaLockExt,
    NucaMutex,
};
use hbo_repro::nuca_topology::{register_thread, NodeId, Topology};

/// A plain (non-atomic-looking) read-modify-write under the lock: any
/// mutual-exclusion failure loses updates and the final count comes up
/// short.
fn hammer(kind: LockKind, threads: usize, iters: u64) {
    let topo = Topology::symmetric(2, threads.div_ceil(2));
    let lock = Arc::new(kind.instantiate(topo.num_nodes()));
    let counter = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for cpu in topo.round_robin_binding(threads) {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            let node = topo.node_of(cpu);
            s.spawn(move || {
                let _reg = register_thread(node);
                for _ in 0..iters {
                    let token = lock.acquire(node);
                    let v = counter.load(Ordering::Relaxed);
                    std::hint::spin_loop();
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(token);
                }
            });
        }
    });
    assert_eq!(
        counter.load(Ordering::Relaxed),
        iters * threads as u64,
        "{kind}: mutual exclusion violated"
    );
}

#[test]
fn mutual_exclusion_all_kinds_four_threads() {
    for &kind in hbo_locks::LockCatalog::kinds() {
        hammer(kind, 4, 4_000);
    }
}

#[test]
fn mutual_exclusion_all_kinds_oversubscribed() {
    // More threads than cores: exercises preemption of spinners and
    // queue waiters on the host OS.
    for &kind in hbo_locks::LockCatalog::kinds() {
        hammer(kind, 8, 500);
    }
}

#[test]
fn try_acquire_never_blocks_and_never_lies() {
    for &kind in hbo_locks::LockCatalog::kinds() {
        let lock = kind.instantiate(2);
        let t = lock
            .try_acquire(NodeId(0))
            .unwrap_or_else(|| panic!("{kind}: free lock refused"));
        assert!(
            lock.try_acquire(NodeId(0)).is_none(),
            "{kind}: double acquire"
        );
        lock.release(t);
    }
}

#[test]
fn guards_release_on_panic() {
    // A panicking critical section must not poison or wedge the lock.
    let lock = Arc::new(LockKind::HboGtSd.instantiate(2));
    let l2 = Arc::clone(&lock);
    let result = std::thread::spawn(move || {
        let _guard = l2.lock();
        panic!("inside critical section");
    })
    .join();
    assert!(result.is_err());
    // The guard's Drop ran during unwinding: lock must be free.
    let t = lock
        .try_acquire(NodeId(0))
        .expect("lock released by unwinding guard");
    lock.release(t);
}

#[test]
fn mutex_protects_non_send_patterns() {
    // A NucaMutex<Vec> exercised concurrently keeps its invariants.
    let mutex = Arc::new(NucaMutex::new(LockKind::Clh.instantiate(2), Vec::new()));
    std::thread::scope(|s| {
        for i in 0..4u64 {
            let mutex = Arc::clone(&mutex);
            s.spawn(move || {
                for j in 0..2_000 {
                    mutex.lock().push(i * 1_000_000 + j);
                }
            });
        }
    });
    let v = mutex.lock();
    assert_eq!(v.len(), 8_000);
}

#[test]
fn instrumented_counts_under_concurrency() {
    let topo = Topology::symmetric(2, 2);
    let lock = Arc::new(Instrumented::new(LockKind::Hbo.instantiate(2)));
    std::thread::scope(|s| {
        for cpu in topo.round_robin_binding(4) {
            let lock = Arc::clone(&lock);
            let node = topo.node_of(cpu);
            s.spawn(move || {
                for _ in 0..2_500 {
                    let t = lock.acquire(node);
                    lock.release(t);
                }
            });
        }
    });
    assert_eq!(lock.stats().acquisitions, 10_000);
    assert!(lock.stats().node_handoffs < 10_000);
}

#[test]
fn starvation_detection_lets_remote_node_in() {
    // Node 0 hammers with zero think time; a node 1 thread must complete
    // a fixed quota in bounded wall time thanks to HBO_GT_SD's measures.
    let ctx = GtContext::new(2);
    let lock = Arc::new(HboGtSdLock::with_config(
        ctx,
        HboGtSdConfig {
            get_angry_limit: 4,
            ..HboGtSdConfig::default()
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..2 {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let t = lock.acquire(NodeId(0));
                    std::hint::spin_loop();
                    lock.release(t);
                }
            });
        }
        let lock1 = Arc::clone(&lock);
        let stop1 = Arc::clone(&stop);
        s.spawn(move || {
            for _ in 0..100 {
                let t = lock1.acquire(NodeId(1));
                lock1.release(t);
            }
            stop1.store(true, Ordering::Relaxed);
        })
        .join()
        .expect("remote thread completed its quota");
    });
}

#[test]
fn tokens_travel_between_threads() {
    // Acquire here, release on another thread — valid for every kind.
    for &kind in hbo_locks::LockCatalog::kinds() {
        let lock = Arc::new(kind.instantiate(2));
        let token = lock.acquire(NodeId(0));
        let l2 = Arc::clone(&lock);
        std::thread::spawn(move || l2.release(token))
            .join()
            .unwrap();
        let t = lock
            .try_acquire(NodeId(0))
            .unwrap_or_else(|| panic!("{kind}: not released"));
        lock.release(t);
    }
}

//! End-to-end fault-injection contract, over the full stack (workload →
//! lock driver → simulator): every lock algorithm still completes its
//! acquisitions under every fault layer, faulted runs reproduce exactly
//! for a seed, and the faulted robustness artifact is byte-identical at
//! any `--jobs` level.

use hbo_locks::LockKind;
use nuca_workloads::modern::{run_modern_raw, ModernConfig};
use nucasim::{
    FaultConfig, HolderPreemptConfig, JitterConfig, MachineConfig, MigrationConfig, SlowNodeConfig,
};

/// Every fault layer at once, scaled so each fires within a short run.
fn all_layers() -> FaultConfig {
    FaultConfig::none()
        .with_holder_preempt(HolderPreemptConfig {
            per_mille: 150,
            quantum: 30_000,
        })
        .with_migration(MigrationConfig {
            mean_gap: 80_000,
            pause: 5_000,
        })
        .with_slow_node(SlowNodeConfig { node: 0, factor: 2 })
        .with_jitter(JitterConfig { max_extra: 50 })
}

fn faulted_cfg(kind: LockKind) -> ModernConfig {
    ModernConfig {
        kind,
        machine: MachineConfig::wildfire(2, 2).with_faults(all_layers()),
        threads: 4,
        iterations: 25,
        critical_work: 16,
        private_work: 1_500,
        cycle_limit: 3_000_000_000,
        ..ModernConfig::default()
    }
}

#[test]
fn every_kind_completes_all_acquisitions_under_all_faults() {
    for &kind in hbo_locks::LockCatalog::kinds() {
        let (report, _) = run_modern_raw(&faulted_cfg(kind));
        assert!(report.finished_all, "{kind}: faulted run hit the budget");
        assert_eq!(
            report.lock_traces[0].acquisitions,
            100,
            "{kind}: lost acquisitions under faults"
        );
        assert!(report.preemptions > 0, "{kind}: holder layer never fired");
        assert!(report.migrations > 0, "{kind}: migration layer never fired");
    }
}

#[test]
fn faulted_runs_reproduce_exactly_for_a_seed() {
    for kind in [LockKind::Mcs, LockKind::HboGtSd] {
        let (a, _) = run_modern_raw(&faulted_cfg(kind));
        let (b, _) = run_modern_raw(&faulted_cfg(kind));
        assert_eq!(a.end_time, b.end_time, "{kind}");
        assert_eq!(a.traffic, b.traffic, "{kind}");
        assert_eq!(a.preemptions, b.preemptions, "{kind}");
        assert_eq!(a.migrations, b.migrations, "{kind}");
    }
}

#[test]
fn robustness_artifact_byte_identical_across_jobs() {
    use nuca_experiments::{run_experiment, runner, Scale};

    let tsv = |jobs: usize| -> Vec<String> {
        runner::set_max_jobs(jobs);
        let reports = run_experiment("robustness", Scale::Fast).expect("known artifact");
        runner::set_max_jobs(0);
        reports.iter().map(|r| r.to_tsv()).collect()
    };
    assert_eq!(tsv(1), tsv(3));
}

//! Drive the NUCA simulator directly: rebuild the paper's headline
//! comparison (new microbenchmark, 28 simulated processors on a 2-node
//! WildFire) and print a compact report.
//!
//! ```bash
//! cargo run --release --example wildfire_study [critical_work]
//! ```
//!
//! This example shows the public simulator API end-to-end: configure a
//! machine, run a workload for every lock algorithm, and read time,
//! node-handoff and traffic metrics from the report.

use hbo_repro::hbo_locks::LockKind;
use hbo_repro::nuca_workloads::modern::{run_modern, ModernConfig};
use hbo_repro::nucasim::MachineConfig;

fn main() {
    let critical_work: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1500);

    println!("2-node Sun WildFire model, 28 CPUs, critical_work = {critical_work}");
    println!(
        "{:<10} {:>12} {:>9} {:>12} {:>12}",
        "lock", "ns/iter", "handoff", "local txns", "global txns"
    );

    let mut baseline = None;
    for &kind in hbo_locks::LockCatalog::kinds() {
        let report = run_modern(&ModernConfig {
            kind,
            machine: MachineConfig::wildfire(2, 14),
            threads: 28,
            iterations: 40,
            critical_work,
            ..ModernConfig::default()
        });
        if kind == LockKind::TatasExp {
            baseline = Some(report.ns_per_iteration);
        }
        println!(
            "{:<10} {:>12.0} {:>9} {:>12} {:>12}",
            kind.as_str(),
            report.ns_per_iteration,
            report
                .handoff_ratio
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            report.traffic.local,
            report.traffic.global,
        );
    }

    if let Some(exp) = baseline {
        let hbo = run_modern(&ModernConfig {
            kind: LockKind::HboGt,
            machine: MachineConfig::wildfire(2, 14),
            threads: 28,
            iterations: 40,
            critical_work,
            ..ModernConfig::default()
        });
        println!(
            "\nHBO_GT is {:.1}x faster than TATAS_EXP at this contention level.",
            exp / hbo.ns_per_iteration
        );
    }
}

//! Contended-counter shootout on real threads: sweep critical-section
//! sizes and compare every algorithm's throughput and fairness.
//!
//! ```bash
//! cargo run --release --example contended_counter
//! ```
//!
//! This is the real-thread analogue of the paper's *new microbenchmark*
//! (Fig. 4): each thread loops { acquire; touch `cs_work` slots of a
//! shared vector; release; private work }. On a machine with a real NUMA
//! topology, bind threads to nodes and register them accordingly; here we
//! emulate a 2-node shape by registration alone, which still exercises
//! every code path of the NUCA-aware algorithms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hbo_repro::hbo_locks::NucaLock;
use hbo_repro::nuca_topology::{register_thread, Topology};

const CS_SLOTS: usize = 64;

struct Shared {
    cs_work: Vec<AtomicU64>,
    finished: Vec<AtomicU64>,
}

fn main() {
    let topo = Topology::symmetric(2, 2);
    let threads = topo.num_cpus();
    let iterations = 30_000u64;

    for cs_len in [0usize, 16, 64] {
        println!("\n== critical work: {cs_len} slots ==");
        println!("{:<10} {:>12} {:>14}", "lock", "ns/iter", "spread %");
        for &kind in hbo_locks::LockCatalog::kinds() {
            let lock = Arc::new(kind.instantiate(topo.num_nodes()));
            let shared = Arc::new(Shared {
                cs_work: (0..CS_SLOTS).map(|_| AtomicU64::new(0)).collect(),
                finished: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            });
            let started = Instant::now();
            std::thread::scope(|s| {
                for (i, cpu) in topo.round_robin_binding(threads).into_iter().enumerate() {
                    let lock = Arc::clone(&lock);
                    let shared = Arc::clone(&shared);
                    let node = topo.node_of(cpu);
                    s.spawn(move || {
                        let _reg = register_thread(node);
                        let t0 = Instant::now();
                        let mut private = 0u64;
                        for n in 0..iterations {
                            let token = lock.acquire(node);
                            for slot in shared.cs_work.iter().take(cs_len) {
                                slot.fetch_add(1, Ordering::Relaxed);
                            }
                            lock.release(token);
                            // Private work between attempts.
                            for _ in 0..(50 + n % 50) {
                                private = private.wrapping_mul(6364136223846793005).wrapping_add(1);
                            }
                        }
                        std::hint::black_box(private);
                        shared.finished[i].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    });
                }
            });
            let elapsed = started.elapsed().as_nanos() as f64;
            let finish: Vec<u64> = shared
                .finished
                .iter()
                .map(|f| f.load(Ordering::Relaxed))
                .collect();
            let max = *finish.iter().max().expect("nonempty") as f64;
            let min = *finish.iter().min().expect("nonempty") as f64;
            // Every slot touched must show the exact global count.
            if cs_len > 0 {
                let expect = iterations * threads as u64;
                assert_eq!(shared.cs_work[0].load(Ordering::Relaxed), expect);
            }
            println!(
                "{:<10} {:>12.1} {:>14.1}",
                kind.as_str(),
                elapsed / (iterations * threads as u64) as f64,
                (max - min) / max * 100.0,
            );
        }
    }
}

//! A Raytrace-style work-stealing task queue guarded by a NUCA-aware
//! lock — the application pattern where the paper's locks shine.
//!
//! ```bash
//! cargo run --release --example task_queue
//! ```
//!
//! A central task queue (like SPLASH-2 Raytrace's ray jobs) is protected
//! by one highly contended lock; each popped task does a bit of private
//! work. We compare the FIFO MCS lock against HBO_GT_SD and report the
//! completion time and how often the queue's cache lines migrated between
//! nodes.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use hbo_repro::hbo_locks::{Instrumented, LockKind, NucaMutex};
use hbo_repro::nuca_topology::{register_thread, Topology};

const TASKS: usize = 120_000;

fn run(kind: LockKind, topo: &Topology) -> (f64, Option<f64>, u64) {
    let queue: VecDeque<u32> = (0..TASKS as u32).collect();
    let lock = Instrumented::new(kind.instantiate(topo.num_nodes()));
    let mutex = Arc::new(NucaMutex::new(lock, queue));
    let done = Arc::new(std::sync::atomic::AtomicU64::new(0));

    let started = Instant::now();
    std::thread::scope(|s| {
        for cpu in topo.round_robin_binding(topo.num_cpus()) {
            let mutex = Arc::clone(&mutex);
            let done = Arc::clone(&done);
            let node = topo.node_of(cpu);
            s.spawn(move || {
                let _reg = register_thread(node);
                let mut sum = 0u64;
                loop {
                    let task = {
                        let mut q = mutex.lock_at(node);
                        q.pop_front()
                    };
                    let Some(task) = task else { break };
                    // "Render" the task: private compute proportional to
                    // the task id's low bits.
                    for i in 0..(200 + (task % 64) as u64) {
                        sum = sum.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i);
                    }
                    done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                std::hint::black_box(sum);
            });
        }
    });
    let secs = started.elapsed().as_secs_f64();
    let processed = done.load(std::sync::atomic::Ordering::Relaxed);
    let handoff = mutex.raw_lock().stats().handoff_ratio();
    (secs, handoff, processed)
}

fn main() {
    let topo = Topology::symmetric(2, 2);
    println!(
        "task queue: {} tasks, {} workers on a {}-node shape\n",
        TASKS,
        topo.num_cpus(),
        topo.num_nodes()
    );
    println!("{:<10} {:>10} {:>10} {:>10}", "lock", "seconds", "handoff", "tasks");
    for kind in [
        LockKind::TatasExp,
        LockKind::Mcs,
        LockKind::Clh,
        LockKind::Hbo,
        LockKind::HboGtSd,
    ] {
        let (secs, handoff, processed) = run(kind, &topo);
        assert_eq!(processed as usize, TASKS, "every task processed exactly once");
        println!(
            "{:<10} {:>10.3} {:>10} {:>10}",
            kind.as_str(),
            secs,
            handoff
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            processed,
        );
    }
    println!("\nLower handoff = the queue stayed inside one node between pops.");
}

//! The hierarchical HBO lock on a CMP-in-NUMA machine shape.
//!
//! ```bash
//! cargo run --release --example hierarchical_cmp
//! ```
//!
//! Builds a machine description with *two* levels of nonuniformity — NUMA
//! nodes containing multi-core chips (the future the paper's §2
//! predicted) — and compares the flat, node-aware HBO lock against
//! [`HierHboLock`], which distinguishes same-chip from cross-chip
//! neighbors with a third backoff class.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hbo_repro::hbo_locks::{HboLock, HierHboLock, LevelBackoff, NucaLock};
use hbo_repro::nuca_topology::{register_thread, Topology};

const ITERS: u64 = 100_000;

fn main() {
    // 2 NUMA nodes × 2 chips × 2 hardware threads.
    let topo = Arc::new(
        Topology::builder()
            .hierarchical_node(&[2, 2])
            .hierarchical_node(&[2, 2])
            .build()
            .expect("static shape"),
    );
    println!(
        "machine: {} nodes, {} CPUs, {} extra hierarchy level(s)\n",
        topo.num_nodes(),
        topo.num_cpus(),
        topo.extra_levels()
    );

    // Flat HBO: only node-aware.
    let flat = Arc::new(HboLock::new());
    let t_flat = run("HBO (flat)", &topo, |cpu, counter| {
        let node = topo.node_of(cpu);
        let _reg = register_thread(node);
        for _ in 0..ITERS {
            let t = flat.acquire(node);
            let v = counter.load(Ordering::Relaxed);
            counter.store(v + 1, Ordering::Relaxed);
            flat.release(t);
        }
    });

    // Hierarchical HBO: chip / node / remote backoff classes.
    let hier = Arc::new(HierHboLock::new(
        Arc::clone(&topo),
        LevelBackoff::geometric(3, 16, 256, 4),
    ));
    let t_hier = run("HBO_HIER", &topo, |cpu, counter| {
        let node = topo.node_of(cpu);
        let _reg = register_thread(node);
        for _ in 0..ITERS {
            let t = hier.acquire_from(cpu);
            let v = counter.load(Ordering::Relaxed);
            counter.store(v + 1, Ordering::Relaxed);
            hier.release(t);
        }
    });

    println!(
        "\nHBO_HIER / HBO wall-time ratio: {:.2} (machine-dependent; the \
         simulator experiments — `experiments -- hier` — isolate the effect)",
        t_hier / t_flat
    );
}

fn run(
    label: &str,
    topo: &Arc<Topology>,
    body: impl Fn(hbo_repro::nuca_topology::CpuId, &AtomicU64) + Sync,
) -> f64 {
    let counter = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for cpu in topo.round_robin_binding(topo.num_cpus()) {
            let body = &body;
            let counter = &counter;
            s.spawn(move || body(cpu, counter));
        }
    });
    let secs = started.elapsed().as_secs_f64();
    let total = counter.load(Ordering::Relaxed);
    assert_eq!(total, ITERS * topo.num_cpus() as u64, "lost updates!");
    println!(
        "{label:<12} {total} acquisitions in {secs:.3} s ({:.0} ns each)",
        secs * 1e9 / total as f64
    );
    secs
}

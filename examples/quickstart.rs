//! Quickstart: protect shared state with a NUCA-aware lock.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Spawns one thread per "CPU" of a two-node machine shape, registers
//! each thread's node, and hammers a shared counter behind each of the
//! paper's lock algorithms, printing throughput and the node-handoff
//! ratio (how often the lock migrated between NUCA nodes).

use std::sync::Arc;
use std::time::Instant;

use hbo_repro::hbo_locks::{Instrumented, NucaLock};
use hbo_repro::nuca_topology::{register_thread, Topology};

fn main() {
    let topo = Topology::symmetric(2, 2);
    let threads = topo.num_cpus();
    let iterations = 200_000u64;

    println!("machine: {} nodes x {} cpus", topo.num_nodes(), threads / 2);
    println!(
        "{:<10} {:>12} {:>16} {:>10}",
        "lock", "total", "ns/acquire", "handoff"
    );

    for &kind in hbo_locks::LockCatalog::kinds() {
        let lock = Arc::new(Instrumented::new(kind.instantiate(topo.num_nodes())));
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let started = Instant::now();

        std::thread::scope(|s| {
            for cpu in topo.round_robin_binding(threads) {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let node = topo.node_of(cpu);
                s.spawn(move || {
                    let _reg = register_thread(node);
                    for _ in 0..iterations {
                        let token = lock.acquire(node);
                        // Critical section: a plain read-modify-write that
                        // would corrupt without mutual exclusion.
                        let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                        counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                        lock.release(token);
                    }
                });
            }
        });

        let elapsed = started.elapsed();
        let stats = lock.stats();
        let total = counter.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(total, iterations * threads as u64, "lost updates!");
        println!(
            "{:<10} {:>12} {:>16.1} {:>10}",
            kind.as_str(),
            total,
            elapsed.as_nanos() as f64 / total as f64,
            stats
                .handoff_ratio()
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "n/a".into()),
        );
    }
    println!("\nAll counters exact: every lock provided mutual exclusion.");
}

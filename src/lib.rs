//! Umbrella crate for the HBO-lock reproduction: re-exports the workspace
//! crates so examples and integration tests have a single dependency.
//!
//! * [`hbo_locks`] — the real-atomics lock library (the paper's
//!   contribution).
//! * [`nuca_topology`] — machine shapes and thread-to-node registration.
//! * [`nucasim`] — the NUCA machine simulator.
//! * [`nucasim_locks`] — the lock algorithms as simulator state machines.
//! * [`nuca_workloads`] — microbenchmarks and SPLASH-2 application models.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! # Example
//!
//! ```
//! use hbo_repro::hbo_locks::{HboLock, NucaLockExt};
//!
//! let lock = HboLock::new();
//! let guard = lock.lock();
//! drop(guard);
//! ```

#![warn(missing_docs)]

pub use hbo_locks;
pub use nuca_topology;
pub use nuca_workloads;
pub use nucasim;
pub use nucasim_locks;

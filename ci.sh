#!/usr/bin/env bash
# CI entry point: build, test, lint, then smoke-run the experiment
# harness at CI scale with parallel jobs. Mirrors what the GitHub
# workflow runs; usable locally as ./ci.sh.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> harness smoke run (all artifacts, fast scale, 2 jobs)"
./target/release/experiments all --fast --jobs 2 --out target/ci-experiments \
    --bench-json target/ci-experiments/bench.json >/dev/null

echo "==> robustness smoke (faulted sweep deterministic across --jobs)"
./target/release/experiments robustness --fast --jobs 1 \
    --out target/ci-rob-j1 >/dev/null
./target/release/experiments robustness --fast --jobs 4 \
    --out target/ci-rob-j4 >/dev/null
cmp target/ci-rob-j1/robustness.tsv target/ci-rob-j4/robustness.tsv
if ./target/release/experiments robustness --jobs 0 >/dev/null 2>&1; then
    echo "expected --jobs 0 to be rejected as a usage error"
    exit 1
fi

echo "==> trace smoke (traced run must not change results)"
./target/release/experiments fig5 --fast --jobs 2 \
    --out target/ci-trace-off >/dev/null
./target/release/experiments fig5 --fast --jobs 2 \
    --out target/ci-trace-on \
    --trace target/ci-trace-on/trace.json \
    --metrics-json target/ci-trace-on/metrics.json >/dev/null
cmp target/ci-trace-off/fig5_time.tsv target/ci-trace-on/fig5_time.tsv
cmp target/ci-trace-off/fig5_handoff.tsv target/ci-trace-on/fig5_handoff.tsv
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
for path in ("target/ci-trace-on/trace.json", "target/ci-trace-on/metrics.json"):
    with open(path) as f:
        doc = json.load(f)
    assert doc, f"{path} is empty"
events = json.load(open("target/ci-trace-on/trace.json"))["traceEvents"]
names = {e["name"] for e in events}
for required in ("LockAcquire", "CoherenceTxn", "GotAngry", "BackoffSleep"):
    assert required in names, f"trace missing {required} events"
print(f"trace OK: {len(events)} events, {len(names)} distinct names")
metrics = json.load(open("target/ci-trace-on/metrics.json"))
for lock in metrics["locks"]:
    assert "preemptions" in lock and "migrations" in lock, "metrics missing fault counters"
print(f"metrics OK: {len(metrics['locks'])} lock entries with fault counters")
EOF
else
    echo "python3 not found; skipping JSON parse validation"
fi

echo "==> scheduler smoke (wheel/heap byte-identical, soft perf gate)"
./target/release/experiments fig5 --fast --jobs 2 --sched heap \
    --out target/ci-sched-heap >/dev/null
./target/release/experiments fig5 --fast --jobs 2 --sched wheel \
    --out target/ci-sched-wheel >/dev/null
cmp target/ci-sched-heap/fig5_time.tsv target/ci-sched-wheel/fig5_time.tsv
cmp target/ci-sched-heap/fig5_handoff.tsv target/ci-sched-wheel/fig5_handoff.tsv
if ./target/release/experiments fig5 --sched splay >/dev/null 2>&1; then
    echo "expected an unknown --sched name to be rejected as a usage error"
    exit 1
fi
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
# Soft throughput gate: compare the fast-scale smoke run against the
# checked-in full-scale baseline. Events/sec is scale-independent enough
# for a coarse gate; CI boxes are noisy, so a shortfall only *fails* past
# 30%, and anything between baseline and -30% just warns.
import json
base = json.load(open("BENCH_harness.json"))["sim_events_per_sec"]
now = json.load(open("target/ci-experiments/bench.json"))["sim_events_per_sec"]
ratio = now / base
line = f"events/s: smoke {now/1e6:.1f}M vs baseline {base/1e6:.1f}M ({ratio:.2f}x)"
if ratio < 0.7:
    raise SystemExit(f"FAIL {line} - >30% regression")
print(("WARN " if ratio < 1.0 else "OK ") + line)
EOF
else
    echo "python3 not found; skipping events/s gate"
fi

echo "==> model checker smoke (exhaustive pass, mutants caught, usage errors)"
./target/release/nuca-mcheck --kind all --cpus 2 \
    --bench-json target/ci-experiments/mcheck.json
for mutant in racy_tatas leaky_hbo_gt; do
    if out=$(./target/release/nuca-mcheck --kind "$mutant" 2>/dev/null); then
        echo "expected the $mutant mutant to fail the checker"
        exit 1
    fi
    if ! grep -q "counterexample for" <<<"$out"; then
        echo "expected a rendered counterexample for $mutant"
        exit 1
    fi
done
if ./target/release/nuca-mcheck --cpus two >/dev/null 2>&1; then
    echo "expected non-numeric --cpus to be rejected as a usage error"
    exit 1
fi
if ./target/release/nuca-mcheck --frobnicate >/dev/null 2>&1; then
    echo "expected an unknown flag to be rejected as a usage error"
    exit 1
fi
./target/release/nuca-mcheck --kind hbo --random 200 --seed 7 >/dev/null

echo "==> ci OK"

#!/usr/bin/env bash
# CI entry point: build, test, lint, then smoke-run the experiment
# harness at CI scale with parallel jobs. Mirrors what the GitHub
# workflow runs; usable locally as ./ci.sh.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> harness smoke run (all artifacts, fast scale, 2 jobs)"
./target/release/experiments all --fast --jobs 2 --out target/ci-experiments \
    --bench-json target/ci-experiments/bench.json >/dev/null

echo "==> ci OK"

#!/usr/bin/env bash
# CI entry point: build, test, lint, then smoke-run the experiment
# harness at CI scale with parallel jobs. Mirrors what the GitHub
# workflow runs; usable locally as ./ci.sh.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> harness smoke run (all artifacts, fast scale, 2 jobs)"
./target/release/experiments all --fast --jobs 2 --out target/ci-experiments \
    --bench-json target/ci-experiments/bench.json >/dev/null

echo "==> robustness smoke (faulted sweep deterministic across --jobs)"
./target/release/experiments robustness --fast --jobs 1 \
    --out target/ci-rob-j1 >/dev/null
./target/release/experiments robustness --fast --jobs 4 \
    --out target/ci-rob-j4 >/dev/null
cmp target/ci-rob-j1/robustness.tsv target/ci-rob-j4/robustness.tsv
if ./target/release/experiments robustness --jobs 0 >/dev/null 2>&1; then
    echo "expected --jobs 0 to be rejected as a usage error"
    exit 1
fi

echo "==> trace smoke (traced run must not change results)"
./target/release/experiments fig5 --fast --jobs 2 \
    --out target/ci-trace-off >/dev/null
./target/release/experiments fig5 --fast --jobs 2 \
    --out target/ci-trace-on \
    --trace target/ci-trace-on/trace.json \
    --metrics-json target/ci-trace-on/metrics.json >/dev/null
cmp target/ci-trace-off/fig5_time.tsv target/ci-trace-on/fig5_time.tsv
cmp target/ci-trace-off/fig5_handoff.tsv target/ci-trace-on/fig5_handoff.tsv
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
for path in ("target/ci-trace-on/trace.json", "target/ci-trace-on/metrics.json"):
    with open(path) as f:
        doc = json.load(f)
    assert doc, f"{path} is empty"
events = json.load(open("target/ci-trace-on/trace.json"))["traceEvents"]
names = {e["name"] for e in events}
for required in ("LockAcquire", "CoherenceTxn", "GotAngry", "BackoffSleep"):
    assert required in names, f"trace missing {required} events"
print(f"trace OK: {len(events)} events, {len(names)} distinct names")
metrics = json.load(open("target/ci-trace-on/metrics.json"))
for lock in metrics["locks"]:
    assert "preemptions" in lock and "migrations" in lock, "metrics missing fault counters"
print(f"metrics OK: {len(metrics['locks'])} lock entries with fault counters")
EOF
else
    echo "python3 not found; skipping JSON parse validation"
fi

echo "==> profiler smoke (nuca-prof observes without changing a byte)"
# fig5 with and without --profile must be byte-identical: profiling only
# observes. The overhead legs run at *full* scale: fast-scale runs are
# sub-millisecond, so per-machine setup noise swamps the per-event cost
# the gate is actually about (and the wall clock there is ±15% anyway).
./target/release/experiments fig5 --fast --jobs 2 \
    --out target/ci-prof-off >/dev/null
./target/release/experiments fig5 --fast --jobs 2 \
    --out target/ci-prof-on \
    --profile target/ci-prof-on/profile.json >/dev/null
cmp target/ci-prof-off/fig5_time.tsv target/ci-prof-on/fig5_time.tsv
cmp target/ci-prof-off/fig5_handoff.tsv target/ci-prof-on/fig5_handoff.tsv
# Best-of-three per leg: single full-scale runs jitter ±10% on a noisy
# box, which is the same order as the overhead being gated.
for rep in 1 2 3; do
    ./target/release/experiments fig5 --jobs 2 \
        --out target/ci-prof-off \
        --bench-json "target/ci-prof-off/bench$rep.json" >/dev/null
    ./target/release/experiments fig5 --jobs 2 \
        --out target/ci-prof-on \
        --bench-json "target/ci-prof-on/bench$rep.json" \
        --profile target/ci-prof-on/profile-full.json >/dev/null
done
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
doc = json.load(open("target/ci-prof-on/profile.json"))
assert doc["version"] == 2, f"unexpected profile schema version {doc['version']}"
labels = [entry["label"] for entry in doc["labels"]]
assert labels == sorted(labels), "profile labels not sorted"
assert len(labels) >= 13, f"expected a profile per registered lock kind, got {labels}"
for entry in doc["labels"]:
    assert entry["events"] > 0, f"{entry['label']}: empty profile"
    lock = entry["locks"][0]
    for key in ("acquires", "local_handoffs", "remote_handoffs", "chains",
                "node_acquires", "cpu_acquires", "residency_runs", "wait", "phases"):
        assert key in lock, f"{entry['label']}: profile missing {key}"
    # One non-handover acquisition per merged chain (fig5 merges one
    # machine per critical_work level under each lock-kind label).
    assert lock["local_handoffs"] + lock["remote_handoffs"] + lock["chains"] \
        == lock["acquires"], f"{entry['label']}: handoff totals inconsistent"
    # In-repo lock kinds account every backoff cycle inside its acquire
    # window; a clamped window means the spin residual lost cycles.
    assert lock["phases"]["spin_clamped"] == 0, \
        f"{entry['label']}: {lock['phases']['spin_clamped']} clamped windows"
print(f"profile OK: {len(labels)} labels, schema v{doc['version']}")
# Overhead gate: streaming profiling must stay cheap. Best-of-three
# events/s of the profiled leg vs the unprofiled leg, both at full scale
# and same jobs. With the paper's 8 kinds this measured 0.90-0.93x
# across containers; the 13-kind catalog sweep lands at ~0.86x — the
# queue-family contenders (TICKET/TWA/CNA/RECIP) spend a larger share
# of their events in fold-heavy categories (handoffs, acquire windows),
# so the *mix* got costlier, not the fold (the 8-kind ratio is
# unchanged at ~0.92). The 0.78 floor keeps the same ±10%-jitter
# headroom below the new operating point while still catching a gross
# fold-cost regression.
off = max(json.load(open(f"target/ci-prof-off/bench{r}.json"))["sim_events_per_sec"]
          for r in (1, 2, 3))
on = max(json.load(open(f"target/ci-prof-on/bench{r}.json"))["sim_events_per_sec"]
         for r in (1, 2, 3))
ratio = on / off
line = f"events/s profiled {on/1e6:.1f}M vs plain {off/1e6:.1f}M ({ratio:.2f}x)"
if ratio < 0.78:
    raise SystemExit(f"FAIL {line} - profiling overhead regression")
print("OK " + line)
EOF
else
    echo "python3 not found; skipping profile JSON validation"
fi

echo "==> handoff artifact smoke (deterministic across --jobs and --sched)"
./target/release/experiments handoff --fast --jobs 1 \
    --out target/ci-handoff-j1 >/dev/null
./target/release/experiments handoff --fast --jobs 4 \
    --out target/ci-handoff-j4 >/dev/null
./target/release/experiments handoff --fast --jobs 4 --sched heap \
    --out target/ci-handoff-heap >/dev/null
cmp target/ci-handoff-j1/handoff.tsv target/ci-handoff-j4/handoff.tsv
cmp target/ci-handoff-j1/handoff.tsv target/ci-handoff-heap/handoff.tsv
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
# The artifact's headline: HBO-family node-handoff locality beats the
# node-blind locks at the sweep's top CPU count.
rows = [line.rstrip("\n").split("\t")
        for line in open("target/ci-handoff-j1/handoff.tsv")]
header, body = rows[0], rows[1:]
rate_col = header.index("Remote Rate")
cpu_col = header.index("CPUs")
top = max(int(r[cpu_col]) for r in body)
rate = {r[0]: float(r[rate_col]) for r in body if int(r[cpu_col]) == top}
for nuca in ("HBO", "HBO_GT", "HBO_GT_SD"):
    for blind in ("MCS", "CLH", "TATAS"):
        assert rate[nuca] < rate[blind], \
            f"{nuca} remote rate {rate[nuca]} not below {blind} {rate[blind]}"
print(f"handoff OK at {top} cpus: HBO_GT_SD {rate['HBO_GT_SD']:.2f} "
      f"vs MCS {rate['MCS']:.2f} vs TATAS {rate['TATAS']:.2f}")
EOF
fi

echo "==> profiler memory-budget regression (full-scale cell, release)"
cargo test --release -q -p nuca-experiments --lib -- --ignored \
    full_scale_profile_memory_stays_bounded

echo "==> selftime smoke (--features selftime exports attribution keys)"
cargo build --release -q -p nuca-experiments --features selftime
./target/release/experiments fig5 --fast --jobs 2 \
    --out target/ci-selftime \
    --metrics-json target/ci-selftime/metrics.json >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
st = json.load(open("target/ci-selftime/metrics.json"))["selftime"]
for key in ("resume_ticks", "mem_ticks", "queue_ticks", "total_ticks"):
    assert key in st, f"selftime block missing {key}"
assert st["total_ticks"] > 0, "selftime counted nothing"
print(f"selftime OK: {st}")
EOF
fi
# Rebuild without the feature so later smokes run the default binary.
cargo build --release -q -p nuca-experiments

echo "==> scheduler smoke (wheel/heap byte-identical, soft perf gate)"
./target/release/experiments fig5 --fast --jobs 2 --sched heap \
    --out target/ci-sched-heap >/dev/null
./target/release/experiments fig5 --fast --jobs 2 --sched wheel \
    --out target/ci-sched-wheel >/dev/null
cmp target/ci-sched-heap/fig5_time.tsv target/ci-sched-wheel/fig5_time.tsv
cmp target/ci-sched-heap/fig5_handoff.tsv target/ci-sched-wheel/fig5_handoff.tsv
if ./target/release/experiments fig5 --sched splay >/dev/null 2>&1; then
    echo "expected an unknown --sched name to be rejected as a usage error"
    exit 1
fi
# Fresh best-of-three measurements for the soft gate below: the
# top-of-script smoke run lands cold on the heels of build+test+clippy
# and can read 40% low on a loaded box.
for rep in 1 2 3; do
    ./target/release/experiments all --fast --jobs 2 \
        --out target/ci-sched-gate \
        --bench-json "target/ci-sched-gate/bench$rep.json" >/dev/null
done
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
# Soft throughput gate: compare the fast-scale smoke run against the
# checked-in full-scale baseline. Events/sec is scale-independent enough
# for a coarse gate; CI boxes are noisy, so a shortfall only *fails* past
# 30%, and anything between baseline and -30% just warns.
import json
base = json.load(open("BENCH_harness.json"))["sim_events_per_sec"]
now = max(json.load(open(f"target/ci-sched-gate/bench{r}.json"))["sim_events_per_sec"]
          for r in (1, 2, 3))
ratio = now / base
line = f"events/s: smoke {now/1e6:.1f}M vs baseline {base/1e6:.1f}M ({ratio:.2f}x)"
if ratio < 0.7:
    raise SystemExit(f"FAIL {line} - >30% regression")
print(("WARN " if ratio < 1.0 else "OK ") + line)
EOF
else
    echo "python3 not found; skipping events/s gate"
fi

echo "==> lockserver smoke (deterministic across --jobs and --sched, flag usage errors)"
./target/release/experiments lockserver --fast --jobs 1 \
    --out target/ci-lockserver-j1 >/dev/null
./target/release/experiments lockserver --fast --jobs 4 \
    --out target/ci-lockserver-j4 >/dev/null
./target/release/experiments lockserver --fast --jobs 4 --sched heap \
    --out target/ci-lockserver-heap >/dev/null
cmp target/ci-lockserver-j1/lockserver.tsv target/ci-lockserver-j4/lockserver.tsv
cmp target/ci-lockserver-j1/lockserver.tsv target/ci-lockserver-heap/lockserver.tsv
for bad in "--shards 0" "--zipf 1.5" "--arrival-gap 0"; do
    # shellcheck disable=SC2086  # word-splitting the flag+operand is the point
    if ./target/release/experiments lockserver --fast $bad >/dev/null 2>&1; then
        echo "expected \`$bad\` to be rejected as a usage error"
        exit 1
    fi
done
./target/release/experiments lockserver --fast --jobs 2 \
    --shards 4 --zipf 0.5 --arrival-gap 8000 \
    --out target/ci-lockserver-flags >/dev/null

echo "==> showdown smoke (deterministic across --jobs and --sched, --kinds flag)"
./target/release/experiments showdown --fast --jobs 1 \
    --out target/ci-showdown-j1 >/dev/null
./target/release/experiments showdown --fast --jobs 4 \
    --out target/ci-showdown-j4 >/dev/null
./target/release/experiments showdown --fast --jobs 4 --sched heap \
    --out target/ci-showdown-heap >/dev/null
cmp target/ci-showdown-j1/showdown.tsv target/ci-showdown-j4/showdown.tsv
cmp target/ci-showdown-j1/showdown.tsv target/ci-showdown-heap/showdown.tsv
if ./target/release/experiments showdown --fast --kinds QOLB >/dev/null 2>&1; then
    echo "expected an unregistered --kinds name to be rejected as a usage error"
    exit 1
fi
if ./target/release/experiments showdown --fast --kinds "MCS,,CLH" >/dev/null 2>&1; then
    echo "expected an empty --kinds entry to be rejected as a usage error"
    exit 1
fi
# --kinds narrows the sweep and is flag-order-insensitive: the selection
# is normalized to catalog registration order before any job runs.
./target/release/experiments showdown --fast --jobs 2 --kinds CNA,MCS \
    --out target/ci-showdown-k1 >/dev/null
./target/release/experiments showdown --fast --jobs 3 --kinds MCS,CNA \
    --out target/ci-showdown-k2 >/dev/null
cmp target/ci-showdown-k1/showdown.tsv target/ci-showdown-k2/showdown.tsv
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
# The headline table: every registered kind appears, the modern trio
# (CNA/TWA/RECIP) rides alongside the paper's eight, and no lock gets
# faster under the full fault stack.
rows = [line.rstrip("\n").split("\t")
        for line in open("target/ci-showdown-j1/showdown.tsv")]
header, body = rows[0], rows[1:]
kinds = {r[0] for r in body}
for required in ("TATAS", "MCS", "HBO_GT_SD", "TICKET", "HIER",
                 "CNA", "TWA", "RECIP"):
    assert required in kinds, f"showdown missing {required} rows"
deg_col = header.index("degradation")
for r in body:
    assert float(r[deg_col]) >= 1.0, \
        f"{r[0]} at {r[header.index('CPUs')]} cpus sped up under faults"
print(f"showdown OK: {len(kinds)} kinds x {len(body)//len(kinds)} cpu counts")
EOF
fi

echo "==> protocol smoke (flat default byte-identity, MESI determinism, falsesharing headline)"
# The flat default and an explicit --protocol flat are the same model:
# every artifact TSV must be byte-identical to the default-run output.
./target/release/experiments colloc fig5 --fast --jobs 2 --protocol flat \
    --out target/ci-proto-flat >/dev/null
cmp target/ci-experiments/colloc.tsv target/ci-proto-flat/colloc.tsv
cmp target/ci-experiments/fig5_time.tsv target/ci-proto-flat/fig5_time.tsv
cmp target/ci-experiments/fig5_handoff.tsv target/ci-proto-flat/fig5_handoff.tsv
# MESI runs obey the same determinism contract as flat ones: byte-identical
# across --jobs (and the protocol must actually change the numbers).
./target/release/experiments falsesharing colloc --fast --jobs 1 --protocol mesi \
    --out target/ci-proto-mesi-j1 >/dev/null
./target/release/experiments falsesharing colloc --fast --jobs 4 --protocol mesi \
    --out target/ci-proto-mesi-j4 >/dev/null
cmp target/ci-proto-mesi-j1/falsesharing.tsv target/ci-proto-mesi-j4/falsesharing.tsv
cmp target/ci-proto-mesi-j1/falsesharing_twa.tsv target/ci-proto-mesi-j4/falsesharing_twa.tsv
cmp target/ci-proto-mesi-j1/colloc.tsv target/ci-proto-mesi-j4/colloc.tsv
if cmp -s target/ci-proto-mesi-j1/colloc.tsv target/ci-experiments/colloc.tsv; then
    echo "expected --protocol mesi to change the colloc numbers"
    exit 1
fi
for bad in "--protocol splay" "--binding diagonal" "--twa-slots 0" "--twa-hash xor"; do
    # shellcheck disable=SC2086  # word-splitting the flag+operand is the point
    if ./target/release/experiments colloc --fast $bad >/dev/null 2>&1; then
        echo "expected \`$bad\` to be rejected as a usage error"
        exit 1
    fi
done
./target/release/experiments fig5 --fast --jobs 2 --binding clustered \
    --twa-slots 64 --twa-hash stride --out target/ci-proto-flags >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
# The falsesharing headline: under MESI the colocated layout pays for
# sharing the lock's cache line (time and global transactions), while
# the word-granular flat model shows a zero gap by construction.
rows = [line.rstrip("\n").split("\t")
        for line in open("target/ci-experiments/falsesharing.tsv")]
header, body = rows[0], rows[1:]
cell = {r[0]: r for r in body}
fns, fgt = header.index("flat ns/acq"), header.index("flat gtxn")
mns, mgt = header.index("mesi ns/acq"), header.index("mesi gtxn")
for kind in ("TATAS_EXP", "HBO_GT", "MCS"):
    co, pad = cell[f"{kind} colocated"], cell[f"{kind} padded"]
    assert co[fns] == pad[fns] and co[fgt] == pad[fgt], \
        f"{kind}: flat model sees the layout ({co[fns]} vs {pad[fns]})"
co, pad = cell["TATAS_EXP colocated"], cell["TATAS_EXP padded"]
ratio = float(co[mns]) / float(pad[mns])
assert ratio > 1.03, f"MESI colocated/padded ns ratio {ratio:.3f}: no false-sharing cost"
assert int(co[mgt]) > int(pad[mgt]), \
    f"MESI colocation added no global traffic ({co[mgt]} vs {pad[mgt]})"
print(f"falsesharing OK: flat gap 0, MESI colocated/padded {ratio:.2f}x "
      f"({co[mgt]} vs {pad[mgt]} gtxn)")
EOF
fi

echo "==> million-lock memory regression (tiered per-lock stats, release)"
cargo test --release -q -p nucasim --lib -- --ignored \
    million_lock_indices_stay_bounded

echo "==> model checker smoke (exhaustive pass, mutants caught, usage errors)"
out=$(./target/release/nuca-mcheck --kind all --cpus 2 \
    --bench-json target/ci-experiments/mcheck.json 2>&1)
echo "$out" | tail -1
if ! grep -q "checked 13 subject" <<<"$out"; then
    echo "expected --kind all to exhaust every registered kind (13 subjects)"
    exit 1
fi
for mutant in racy_tatas leaky_hbo_gt; do
    if out=$(./target/release/nuca-mcheck --kind "$mutant" 2>/dev/null); then
        echo "expected the $mutant mutant to fail the checker"
        exit 1
    fi
    if ! grep -q "counterexample for" <<<"$out"; then
        echo "expected a rendered counterexample for $mutant"
        exit 1
    fi
done
# The CNA splice mutant drops the secondary queue on handoff; two CPUs
# never populate it, so the checker needs a third to expose the loss.
if out=$(./target/release/nuca-mcheck --kind splice_lost_cna --cpus 3 2>/dev/null); then
    echo "expected the splice_lost_cna mutant to fail the checker at 3 cpus"
    exit 1
fi
if ! grep -q "counterexample for" <<<"$out"; then
    echo "expected a rendered counterexample for splice_lost_cna"
    exit 1
fi
if ./target/release/nuca-mcheck --cpus two >/dev/null 2>&1; then
    echo "expected non-numeric --cpus to be rejected as a usage error"
    exit 1
fi
if ./target/release/nuca-mcheck --frobnicate >/dev/null 2>&1; then
    echo "expected an unknown flag to be rejected as a usage error"
    exit 1
fi
./target/release/nuca-mcheck --kind hbo --random 200 --seed 7 >/dev/null

echo "==> ci OK"
